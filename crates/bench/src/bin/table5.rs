//! Table 5 — number of buffers inserted by each algorithm (heterogeneous
//! spatial model), with the ratio versus WID in parentheses. The paper's
//! shape: WID always uses the fewest buffers (NOM avg 1.15×, D2D 1.13×).
//!
//! `--jobs N` fans each row's statistical optimizations across the
//! batch worker pool; the table is bit-identical at any job count.

use varbuf_bench::{rat_optimization_row_jobs, SUITE};
use varbuf_core::pool::default_jobs;
use varbuf_variation::SpatialKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .map_or(1, |n: usize| if n == 0 { default_jobs() } else { n });

    println!("Table 5: number of buffers under different variation models");
    println!("{:<6} {:>16} {:>16} {:>8}", "Bench", "NOM", "D2D", "WID");
    let mut ratio_sums = [0.0_f64; 2];
    for name in SUITE {
        let row = rat_optimization_row_jobs(name, SpatialKind::Heterogeneous, jobs);
        let wid = row.algos[2].buffers as f64;
        let nom = row.algos[0].buffers;
        let d2d = row.algos[1].buffers;
        ratio_sums[0] += nom as f64 / wid;
        ratio_sums[1] += d2d as f64 / wid;
        println!(
            "{:<6} {:>8} ({:.2}x) {:>8} ({:.2}x) {:>8}",
            name,
            nom,
            nom as f64 / wid,
            d2d,
            d2d as f64 / wid,
            row.algos[2].buffers
        );
    }
    let n = SUITE.len() as f64;
    println!(
        "{:<6} {:>8} ({:.2}x) {:>8} ({:.2}x) {:>8}",
        "Avg",
        "",
        ratio_sums[0] / n,
        "",
        ratio_sums[1] / n,
        "1x"
    );
    println!("\npaper reference: NOM avg 1.15x, D2D avg 1.13x, WID 1x (fewest)");
}
