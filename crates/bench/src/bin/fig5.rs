//! Figure 5 — runtime of the 2P algorithm versus the number of sinks.
//!
//! The paper's claim: roughly linear scalability. We run the named suite
//! plus larger synthetic nets (up to ~12k sinks) and report seconds and
//! microseconds per candidate position; approximate linearity shows as a
//! flat µs/position column.

use std::time::Instant;
use varbuf_bench::{model_for, SEGMENT_UM};
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{SpatialKind, VariationMode};

fn main() {
    println!("Figure 5: 2P runtime versus total number of sinks (WID variation)");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "Bench", "Sinks", "Positions", "Time (s)", "us/position", "PeakSols"
    );

    let cases: Vec<(String, usize, u64)> = [
        ("p1", 269),
        ("p2", 603),
        ("r1", 267),
        ("r2", 598),
        ("r3", 862),
        ("r4", 1903),
        ("r5", 3101),
    ]
    .iter()
    .map(|&(n, s)| (n.to_owned(), s, 0))
    .chain([
        ("x6k".to_owned(), 6000, 0xA001),
        ("x9k".to_owned(), 9000, 0xA002),
        ("x12k".to_owned(), 12_000, 0xA003),
    ])
    .collect();

    for (name, sinks, seed) in cases {
        let tree = if seed == 0 {
            varbuf_bench::load(&name)
        } else {
            generate_benchmark(&BenchmarkSpec::random(&name, sinks, seed)).subdivided(SEGMENT_UM)
        };
        let model = model_for(&tree, SpatialKind::Heterogeneous);
        let start = Instant::now();
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &DpOptions::default(),
        )
        .expect("2P completes");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>8} {:>10} {:>10.3} {:>12.1} {:>10}",
            name,
            tree.sink_count(),
            tree.candidate_count(),
            secs,
            1e6 * secs / tree.candidate_count() as f64,
            r.stats.max_solutions_per_node
        );
    }
    println!("\npaper reference: 'roughly the linear runtime scalability ... in terms of");
    println!("the number of sinks' (their absolute times: 1.5s on p1 to 922.8s on r5)");
}
