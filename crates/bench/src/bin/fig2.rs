//! Figure 2 — probability that `T1 > T2` as a function of the mean
//! difference, for correlation coefficients ρ ∈ {0, 0.5, 0.9} and for
//! σ1 = σ2 and σ1 = 3σ2 (eq. (8) of the paper).
//!
//! The paper's reading: a mean difference of less than ~4 time units
//! already gives 85% ordering confidence, and correlation sharpens the
//! curve further — which is why 2P pruning with p̄ > 0.5 still prunes
//! nearly everything on real (highly correlated) nets.

use varbuf_stats::prob_greater_normal;

fn main() {
    println!("Figure 2: P(T1 > T2) versus mean difference (sigma2 = 1)");
    let rhos = [0.0, 0.5, 0.9];
    println!(
        "{:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "dmu", "s1=s2", "", "", "s1=3s2", "", ""
    );
    println!(
        "{:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "", "rho=0", "rho=.5", "rho=.9", "rho=0", "rho=.5", "rho=.9"
    );
    let mut dmu = 0.0;
    while dmu <= 6.0 + 1e-9 {
        let mut row = format!("{dmu:>6.1} |");
        for &(s1, s2) in &[(1.0, 1.0), (3.0, 1.0)] {
            for &rho in &rhos {
                let p = prob_greater_normal(dmu, 0.0, s1, s2, rho);
                row.push_str(&format!(" {:>8.4}", p));
            }
            row.push_str(" |");
        }
        println!("{}", row.trim_end_matches(" |"));
        dmu += 0.5;
    }

    // The headline datapoint the paper calls out: 85% confidence needs a
    // mean difference below 4 units even in the worst plotted case.
    let worst_dmu_for_85 = (0..=600)
        .map(|i| f64::from(i) * 0.01)
        .find(|&d| {
            [(1.0, 1.0), (3.0, 1.0)]
                .iter()
                .flat_map(|&(s1, s2)| rhos.iter().map(move |&r| (s1, s2, r)))
                .all(|(s1, s2, r)| prob_greater_normal(d, 0.0, s1, s2, r) >= 0.85)
        })
        .unwrap_or(f64::NAN);
    println!("\nsmallest mean difference giving P >= 0.85 in every case: {worst_dmu_for_85:.2}");
    println!("paper reference: 'it only requires mu_T1 > mu_T2 by less than 4 time units'");
}
