//! Table 1 — characteristics of the benchmarks.
//!
//! Reproduces the sink / buffer-position counts of the paper's suite and
//! additionally reports the refined (250 µm) variants the optimization
//! experiments use, plus wirelength and die size for context.

use varbuf_bench::{load, load_raw, SUITE};

fn main() {
    println!("Table 1: characteristics of benchmarks");
    println!(
        "{:<6} {:>7} {:>18} {:>18} {:>12} {:>10}",
        "Bench", "Sinks", "Buffer Positions", "Refined(250um)", "Wire (mm)", "Die (mm)"
    );
    for name in SUITE {
        let raw = load_raw(name);
        let refined = load(name);
        let bb = raw.bounding_box();
        println!(
            "{:<6} {:>7} {:>18} {:>18} {:>12.1} {:>10.1}",
            name,
            raw.sink_count(),
            raw.candidate_count(),
            refined.candidate_count(),
            raw.total_wire_length() / 1000.0,
            bb.width().max(bb.height()) / 1000.0,
        );
    }
    println!("\npaper reference: p1 269/537, p2 603/1205, r1 267/533, r2 598/1195,");
    println!("                 r3 862/1723, r4 1903/3805, r5 3101/6201");
}
