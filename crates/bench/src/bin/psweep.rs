//! Section 5.3's final experiment — sensitivity of the optimal RAT to the
//! 2P thresholds `p̄_L`, `p̄_T` swept from 0.5 to 0.95.
//!
//! The paper reports less than 0.1% difference across the sweep; this
//! binary reports the per-benchmark spread and the surviving-solution
//! counts (higher thresholds prune less).

use varbuf_bench::{load, model_for, SUITE};
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_variation::{SpatialKind, VariationMode};

fn main() {
    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    println!("p-bar sweep: relative change of the optimal mean RAT vs p=0.5");
    print!("{:<6}", "Bench");
    for p in thresholds {
        print!(" {:>10}", format!("p={p}"));
    }
    println!(" {:>12}", "max |delta|");

    for name in SUITE {
        let tree = load(name);
        let model = model_for(&tree, SpatialKind::Heterogeneous);
        let mut base = None;
        let mut max_delta: f64 = 0.0;
        print!("{name:<6}");
        for &p in &thresholds {
            let rule = TwoParam::new(p, p);
            let r = optimize_with_rule(
                &tree,
                &model,
                VariationMode::WithinDie,
                &rule,
                &DpOptions::default(),
            )
            .expect("2P completes");
            let mean = r.root_rat.mean();
            let b = *base.get_or_insert(mean);
            let delta = 100.0 * (mean - b) / b.abs();
            max_delta = max_delta.max(delta.abs());
            print!(" {:>9.4}%", delta);
        }
        println!(" {max_delta:>11.4}%");
    }
    println!("\npaper reference: 'less than 0.1% difference in the final optimal RAT'");
}
