//! The capacity experiment of footnote 4 — an eight-level H-tree clock
//! network with more than 64,000 sinks, far past what the 4P rule (9
//! sinks in the original DATE'05 report) can handle.
//!
//! Run with `cargo run --release -p varbuf-bench --bin capacity -- [levels]`
//! (levels defaults to 16 → 65,536 sinks).

use std::time::Instant;
use varbuf_core::dp::{optimize_with_rule, DpOptions};
use varbuf_core::prune::TwoParam;
use varbuf_rctree::generate::{generate_htree, HTreeSpec};
use varbuf_variation::{ProcessModel, SpatialKind, VariationMode};

fn main() {
    let levels: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let tree = generate_htree(&HTreeSpec::with_levels(levels));
    println!(
        "capacity run: {}-level binary H-tree, {} sinks, {} candidate positions",
        levels,
        tree.sink_count(),
        tree.candidate_count()
    );

    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let start = Instant::now();
    let r = optimize_with_rule(
        &tree,
        &model,
        VariationMode::WithinDie,
        &TwoParam::default(),
        &DpOptions::default(),
    )
    .expect("2P completes");
    let secs = start.elapsed().as_secs_f64();

    println!(
        "2P WID insertion: {secs:.2}s, {} buffers, RAT {:.1} ± {:.2} ps, peak {} solutions/node",
        r.assignment.len(),
        r.root_rat.mean(),
        r.root_rat.std_dev(),
        r.stats.max_solutions_per_node
    );
    println!("\npaper reference: 'the largest benchmark we have tested in house is an");
    println!("eight-level H-tree clock network with more than 64,000 sinks'");
}
