//! Figure 6 — the root-RAT PDF predicted by the first-order model versus
//! Monte Carlo simulation, on the largest benchmark (r5).

use varbuf_bench::{load, model_for, options};
use varbuf_core::driver::optimize_statistical;
use varbuf_core::yield_eval::YieldEvaluator;
use varbuf_stats::gaussian::norm_cdf;
use varbuf_stats::mc::sample_moments;
use varbuf_stats::{ks_critical, ks_statistic, norm_pdf, Histogram};
use varbuf_variation::{SpatialKind, VariationMode};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "r5".to_owned());
    let samples: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    let tree = load(&name);
    let model = model_for(&tree, SpatialKind::Heterogeneous);
    println!("Figure 6: RAT at the root, model versus Monte Carlo ({name}, {samples} samples)");

    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &options())
        .expect("optimization succeeds");
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let analysis = silicon.analyze(&wid.assignment);

    let mc = silicon.monte_carlo(&wid.assignment, samples, 777);
    let (mc_mean, mc_var) = sample_moments(&mc);

    println!(
        "model:       RAT ~ N({:.1}, {:.3}²) ps",
        analysis.rat.mean(),
        analysis.rat.std_dev()
    );
    println!(
        "monte carlo: mean {:.1} ps, sigma {:.3} ps",
        mc_mean,
        mc_var.sqrt()
    );
    println!(
        "relative error: mean {:.3}%, sigma {:.1}%",
        100.0 * (analysis.rat.mean() - mc_mean).abs() / mc_mean.abs(),
        100.0 * (analysis.rat.std_dev() - mc_var.sqrt()).abs() / mc_var.sqrt()
    );
    // Quantitative goodness of fit: KS distance of the MC sample against
    // the model-predicted normal.
    let (mu, sigma_model) = (analysis.rat.mean(), analysis.rat.std_dev());
    let d = ks_statistic(&mc, |x| norm_cdf((x - mu) / sigma_model));
    println!(
        "KS distance vs model normal: {:.4} (5% critical value {:.4})\n",
        d,
        ks_critical(mc.len(), 0.05)
    );

    let hist = Histogram::from_samples(&mc, 33);
    let sigma = analysis.rat.std_dev();
    let peak = norm_pdf(0.0) / sigma;
    println!(
        "{:>12}  {:<30} | {:<30}",
        "RAT (ps)", "monte carlo", "model"
    );
    for (x, d) in hist.density_points() {
        let m = norm_pdf((x - analysis.rat.mean()) / sigma) / sigma;
        let bar = |v: f64| "#".repeat(((v / peak) * 30.0).round().clamp(0.0, 30.0) as usize);
        println!("{x:>12.1}  {:<30} | {:<30}", bar(d), bar(m));
    }
    println!("\npaper reference: 'the first order process variation model is very");
    println!("accurate in predicting the PDF of RAT'");
}
