//! Table 2 — runtime comparison between the 4P and 2P pruning rules.
//!
//! The paper's Table 2: 4P completes only on p1 (25.4 s vs 1.5 s for 2P,
//! a 17.3× speedup) and runs out of the 2 GB / 4 h caps everywhere else,
//! while 2P finishes the whole suite. We enforce the same failure
//! discipline with a solution-count cap and a wall-clock limit
//! (configurable via `--cap N` and `--limit SECONDS`).
//!
//! Both columns route through [`optimize_batch`]: `--jobs N` fans the
//! 2P/4P pair of each benchmark across the worker pool (results are
//! bit-identical at any job count; `--jobs 1` is the sequential loop and
//! reproduces the historical numbers).

use std::sync::Arc;
use std::time::Duration;
use varbuf_bench::{load_raw, model_for, SUITE};
use varbuf_core::dp::DpOptions;
use varbuf_core::pool::{default_jobs, optimize_batch, BatchRequest};
use varbuf_core::prune::{FourParam, TwoParam};
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_variation::{SpatialKind, VariationMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cap = arg_value(&args, "--cap").unwrap_or(200_000.0) as usize;
    let limit = Duration::from_secs_f64(arg_value(&args, "--limit").unwrap_or(120.0));
    let jobs =
        arg_value(&args, "--jobs")
            .map_or(1, |n| if n <= 0.0 { default_jobs() } else { n as usize });

    println!("Table 2: runtime comparison in seconds (WID variation, RAT optimization)");
    println!(
        "(4P caps: {cap} solutions/node, {:.0}s wall clock; {jobs} worker(s))",
        limit.as_secs_f64()
    );
    println!("{:<6} {:>12} {:>10} {:>10}", "Bench", "4P", "2P", "Speedup");

    // Table 2 uses the raw (Table 1) position counts, like the paper.
    for name in SUITE {
        let tree = load_raw(name);
        let model = model_for(&tree, SpatialKind::Heterogeneous);
        let opts4 = DpOptions {
            max_solutions_per_node: cap,
            time_limit: limit,
            ..DpOptions::default()
        };

        let mut two = BatchRequest::new(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(TwoParam::default()),
        );
        two.strict = true;
        let mut four = BatchRequest::new(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(FourParam::default()),
        );
        four.strict = true;
        four.options = opts4;

        let mut results = optimize_batch(&[two, four], jobs).into_iter();
        let t2 = results
            .next()
            .expect("2P slot")
            .expect("2P always completes")
            .result
            .stats
            .runtime
            .as_secs_f64();
        match results.next().expect("4P slot") {
            Ok(r) => {
                let t4 = r.result.stats.runtime.as_secs_f64();
                println!("{name:<6} {t4:>12.2} {t2:>10.3} {:>9.1}x", t4 / t2);
            }
            Err(e) => {
                println!("{name:<6} {:>12} {t2:>10.3} {:>10}", "-", "-");
                eprintln!("  ({name}: 4P failed: {e})");
            }
        }
    }
    println!("\npaper reference: p1 25.4s vs 1.5s (17.3x); 4P '-' beyond p1;");
    println!("                 2P up to 922.8s on r5 (2005 hardware)");

    // The paper frames [7]'s capacity as "the largest routing tree has
    // only nine (9) sinks". Find the largest synthetic net our 4P
    // implementation completes under the same caps. A single request
    // can't fan out, so `--jobs` becomes intra-tree workers here.
    println!("\n4P capacity sweep (synthetic nets, same caps):");
    let mut largest_ok = 0;
    for sinks in [4usize, 6, 9, 12, 16, 24, 32, 48] {
        let tree = generate_benchmark(&BenchmarkSpec::random("cap4p", sinks, 1));
        let model = model_for(&tree, SpatialKind::Heterogeneous);
        let mut req = BatchRequest::new(
            &tree,
            &model,
            VariationMode::WithinDie,
            Arc::new(FourParam::default()),
        );
        req.strict = true;
        req.options = DpOptions {
            max_solutions_per_node: cap,
            time_limit: limit,
            jobs,
            ..DpOptions::default()
        };
        let start = std::time::Instant::now();
        match optimize_batch(&[req], 1).pop().expect("one request") {
            Ok(r) => {
                largest_ok = sinks;
                println!(
                    "  {sinks:>3} sinks: ok in {:.2}s (peak {} solutions/node)",
                    start.elapsed().as_secs_f64(),
                    r.result.stats.max_solutions_per_node
                );
            }
            Err(e) => {
                println!("  {sinks:>3} sinks: {e}");
                break;
            }
        }
    }
    println!("largest 4P-completable net: {largest_ok} sinks (paper's [7]: 9 sinks)");
}

fn arg_value(args: &[String], key: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
