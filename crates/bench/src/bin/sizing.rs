//! Extension experiment — simultaneous buffer insertion and wire sizing
//! (the formulation of the companion paper \[8\], He/Kahng/Tam/Xiong
//! ISPD'05): how much RAT does a 3-width wire library buy on top of
//! buffering, and at what runtime cost?

use std::time::Instant;
use varbuf_bench::{load, model_for, SUITE};
use varbuf_core::dp::{optimize_with_rule, optimize_with_sizing, DpOptions, WireSizing};
use varbuf_core::prune::TwoParam;
use varbuf_variation::{SpatialKind, VariationMode};

fn main() {
    println!("Wire-sizing extension: 2P WID insertion with a {{1x, 2x, 4x}} width library");
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "Bench", "buf-only", "buf+size", "gain", "t.buf (s)", "t.size (s)", "widened"
    );
    for name in SUITE {
        let tree = load(name);
        let model = model_for(&tree, SpatialKind::Heterogeneous);
        let opts = DpOptions::default();

        let t0 = Instant::now();
        let plain = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &opts,
        )
        .expect("completes");
        let t_plain = t0.elapsed().as_secs_f64();

        let sizing = WireSizing::default_three();
        let t1 = Instant::now();
        let sized = optimize_with_sizing(
            &tree,
            &model,
            VariationMode::WithinDie,
            &TwoParam::default(),
            &sizing,
            &opts,
        )
        .expect("completes");
        let t_sized = t1.elapsed().as_secs_f64();

        let y_plain = plain.root_rat.percentile(0.05);
        let y_sized = sized.root_rat.percentile(0.05);
        let widened = sized.wire_widths.iter().filter(|&&(_, wi)| wi != 0).count();
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>7.2}% {:>10.2} {:>10.2} {:>10}",
            name,
            y_plain,
            y_sized,
            100.0 * (y_sized - y_plain) / y_plain.abs(),
            t_plain,
            t_sized,
            widened,
        );
    }
    println!("\nshape expectation: sizing improves the 95%-yield RAT a few percent on");
    println!("wire-dominated nets at a ~{{width count}}x runtime multiplier");
}
