//! A minimal in-tree micro-benchmark harness.
//!
//! The workspace builds hermetically with no external crates, so the
//! Criterion dependency was replaced by this module: warmup plus a fixed
//! wall-clock budget per benchmark, reporting min/median/mean over the
//! collected iteration timings. It is deliberately simple — no outlier
//! rejection, no statistical regression — because the experiment binaries
//! only need stable relative numbers (2P vs 4P, analytic vs Monte Carlo,
//! governed vs ungoverned), not publishable absolute ones.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] so bench files need one import.
pub use std::hint::black_box;

/// Per-benchmark tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock spent warming up (JIT-free in Rust, but fills caches).
    pub warmup: Duration,
    /// Wall-clock budget for measured iterations.
    pub measure: Duration,
    /// Hard cap on measured iterations (keeps slow benches bounded).
    pub max_iters: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(500),
            max_iters: 100_000,
        }
    }
}

impl BenchConfig {
    /// A configuration for expensive benchmarks (few, long iterations).
    #[must_use]
    pub fn slow() -> Self {
        Self {
            warmup: Duration::from_millis(50),
            measure: Duration::from_secs(2),
            max_iters: 20,
        }
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label as printed.
    pub name: String,
    /// Number of measured iterations.
    pub iters: u64,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

impl BenchResult {
    fn render(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// A named group of benchmarks printed as one table.
#[derive(Debug, Default)]
pub struct Bencher {
    group: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Starts a benchmark group with default timing budgets.
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_owned(),
            config: BenchConfig::default(),
            results: Vec::new(),
        }
    }

    /// Overrides the timing budgets for subsequent benchmarks.
    #[must_use]
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs one benchmark: `f` is called repeatedly; its return value is
    /// passed through [`black_box`] so the computation cannot be elided.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < self.config.warmup {
            black_box(f());
        }
        // Measure.
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.config.measure
            && (samples.len() as u64) < self.config.max_iters
        {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        if samples.is_empty() {
            // The first iteration overran the budget; measure exactly one.
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let iters = samples.len() as u64;
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            min,
            median,
            mean,
        };
        println!(
            "{}/{:<40} {:>12} median, {:>12} mean, {:>12} min ({} iters)",
            self.group,
            result.name,
            BenchResult::render(result.median),
            BenchResult::render(result.mean),
            BenchResult::render(result.min),
            result.iters
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Finishes the group (prints a separator for readability).
    pub fn finish(&self) {
        println!(
            "--- {} done ({} benchmarks)",
            self.group,
            self.results.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut b = Bencher::new("test").with_config(BenchConfig {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            max_iters: 1000,
        });
        let r = b.bench("sum", || (0..100u64).sum::<u64>()).clone();
        assert!(r.iters >= 1);
        assert!(r.min <= r.median && r.median <= r.mean * 2);
        assert_eq!(b.results().len(), 1);
        b.finish();
    }

    #[test]
    fn render_units() {
        assert!(BenchResult::render(Duration::from_nanos(10)).ends_with("ns"));
        assert!(BenchResult::render(Duration::from_micros(10)).ends_with("µs"));
        assert!(BenchResult::render(Duration::from_millis(10)).ends_with("ms"));
        assert!(BenchResult::render(Duration::from_secs(10)).ends_with('s'));
    }
}
