//! A minimal in-tree micro-benchmark harness.
//!
//! The workspace builds hermetically with no external crates, so the
//! Criterion dependency was replaced by this module: warmup plus a fixed
//! wall-clock budget per benchmark, reporting min/median/mean over the
//! collected iteration timings. It is deliberately simple — no outlier
//! rejection, no statistical regression — because the experiment binaries
//! only need stable relative numbers (2P vs 4P, analytic vs Monte Carlo,
//! governed vs ungoverned), not publishable absolute ones.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] so bench files need one import.
pub use std::hint::black_box;

/// Allocation counting for hot-path regression assertions.
///
/// The DP's steady-state node visit is supposed to be (nearly)
/// allocation-free: solution carcasses, candidate lists, and prune
/// scratch all come from the engine's recycling pool, so the only
/// allocations left per candidate are the trace `Arc`s that record
/// lineage. [`CountingAlloc`] wraps the system allocator and counts
/// every allocation and reallocation; a bench binary installs it with
/// `#[global_allocator]` and asserts on [`alloc_count`] deltas around a
/// measured region, turning an allocation regression (per-candidate
/// heap traffic creeping back into the kernels) into a loud failure.
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// A [`System`] wrapper counting allocations and reallocations
    /// (frees are not counted — the assertion is about acquisition
    /// pressure, and `realloc` already covers growth).
    pub struct CountingAlloc;

    // SAFETY: pure forwarding to `System`'s implementation; the counter
    // is a relaxed atomic with no effect on allocation semantics. This
    // is the crate's single `unsafe` exemption (see `lib.rs`).
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Allocations (plus reallocations) since process start. Only
    /// meaningful when [`CountingAlloc`] is installed as the global
    /// allocator; returns a frozen 0 otherwise.
    #[must_use]
    pub fn alloc_count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Per-benchmark tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock spent warming up (JIT-free in Rust, but fills caches).
    pub warmup: Duration,
    /// Wall-clock budget for measured iterations.
    pub measure: Duration,
    /// Hard cap on measured iterations (keeps slow benches bounded).
    pub max_iters: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(500),
            max_iters: 100_000,
        }
    }
}

impl BenchConfig {
    /// A configuration for expensive benchmarks (few, long iterations).
    #[must_use]
    pub fn slow() -> Self {
        Self {
            warmup: Duration::from_millis(50),
            measure: Duration::from_secs(2),
            max_iters: 20,
        }
    }
}

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label as printed.
    pub name: String,
    /// Number of measured iterations.
    pub iters: u64,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Candidate solutions generated per second of median iteration
    /// (DP benches annotate this from `DpStats`; `None` elsewhere).
    pub solutions_per_sec: Option<f64>,
    /// Largest candidate list the benched run held at any node.
    pub max_list_size: Option<usize>,
}

impl BenchResult {
    /// Attaches DP throughput metadata to this result: `generated` is
    /// the number of candidate solutions one iteration produced,
    /// `max_list` the peak list size it reached. Feeds `BENCH_dp.json`.
    pub fn annotate_dp(&mut self, generated: usize, max_list: usize) -> &mut Self {
        let secs = self.median.as_secs_f64();
        self.solutions_per_sec = (secs > 0.0).then(|| generated as f64 / secs);
        self.max_list_size = Some(max_list);
        self
    }

    fn render(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// A named group of benchmarks printed as one table.
#[derive(Debug, Default)]
pub struct Bencher {
    group: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Starts a benchmark group with default timing budgets.
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_owned(),
            config: BenchConfig::default(),
            results: Vec::new(),
        }
    }

    /// Overrides the timing budgets for subsequent benchmarks.
    #[must_use]
    pub fn with_config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs one benchmark: `f` is called repeatedly; its return value is
    /// passed through [`black_box`] so the computation cannot be elided.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut BenchResult {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < self.config.warmup {
            black_box(f());
        }
        // Measure.
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.config.measure
            && (samples.len() as u64) < self.config.max_iters
        {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        if samples.is_empty() {
            // The first iteration overran the budget; measure exactly one.
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let iters = samples.len() as u64;
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            min,
            median,
            mean,
            solutions_per_sec: None,
            max_list_size: None,
        };
        println!(
            "{}/{:<40} {:>12} median, {:>12} mean, {:>12} min ({} iters)",
            self.group,
            result.name,
            BenchResult::render(result.median),
            BenchResult::render(result.mean),
            BenchResult::render(result.min),
            result.iters
        );
        self.results.push(result);
        self.results.last_mut().expect("just pushed")
    }

    /// All results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Finishes the group (prints a separator for readability).
    pub fn finish(&self) {
        println!(
            "--- {} done ({} benchmarks)",
            self.group,
            self.results.len()
        );
    }
}

/// Machine-readable sibling of the printed tables.
///
/// Accumulates [`BenchResult`]s across groups plus free-form metadata
/// and serializes them as one JSON document — `BENCH_dp.json` at the
/// repo root for the DP benches. Hand-rolled (the workspace is
/// dependency-free), so only the shapes used here are supported:
/// string/number metadata and a flat `benches` array.
#[derive(Debug, Default)]
pub struct JsonReport {
    /// `key -> already-rendered JSON value`, emitted in insert order.
    meta: Vec<(String, String)>,
    /// `(group, result)` pairs, emitted in insert order.
    entries: Vec<(String, BenchResult)>,
}

impl JsonReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a numeric metadata field (e.g. `threads_available`).
    pub fn meta_num(&mut self, key: &str, value: f64) {
        self.meta.push((key.to_owned(), format!("{value}")));
    }

    /// Records a string metadata field (e.g. the bench binary name).
    pub fn meta_str(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_owned(), json_string(value)));
    }

    /// Records every result of a finished group.
    pub fn record_group(&mut self, group: &str, results: &[BenchResult]) {
        for r in results {
            self.entries.push((group.to_owned(), r.clone()));
        }
    }

    /// Serializes the report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (key, value) in &self.meta {
            out.push_str(&format!("  {}: {value},\n", json_string(key)));
        }
        out.push_str("  \"benches\": [\n");
        for (i, (group, r)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": {}, \"name\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"iters\": {}, \"solutions_per_sec\": {}, \"max_list_size\": {}}}{}\n",
                json_string(group),
                json_string(&r.name),
                r.median.as_nanos(),
                r.mean.as_nanos(),
                r.min.as_nanos(),
                r.iters,
                r.solutions_per_sec
                    .map_or_else(|| "null".to_owned(), |v| format!("{v:.1}")),
                r.max_list_size
                    .map_or_else(|| "null".to_owned(), |v| v.to_string()),
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_round_trips_structure() {
        let mut report = JsonReport::new();
        report.meta_num("threads_available", 4.0);
        report.meta_str("source", "unit \"test\"");
        let mut r = BenchResult {
            name: "2P/128".to_owned(),
            iters: 3,
            min: Duration::from_nanos(10),
            median: Duration::from_micros(2),
            mean: Duration::from_micros(3),
            solutions_per_sec: None,
            max_list_size: None,
        };
        r.annotate_dp(1000, 42);
        report.record_group("dp", &[r]);
        let json = report.to_json();
        assert!(json.contains("\"threads_available\": 4"));
        assert!(json.contains("\"source\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"median_ns\": 2000"));
        assert!(json.contains("\"max_list_size\": 42"));
        assert!(json.contains("\"solutions_per_sec\": 500000000.0"));
        // Balanced braces/brackets — cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_records_samples() {
        let mut b = Bencher::new("test").with_config(BenchConfig {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            max_iters: 1000,
        });
        let r = b.bench("sum", || (0..100u64).sum::<u64>()).clone();
        assert!(r.iters >= 1);
        assert!(r.min <= r.median && r.median <= r.mean * 2);
        assert_eq!(b.results().len(), 1);
        b.finish();
    }

    #[test]
    fn render_units() {
        assert!(BenchResult::render(Duration::from_nanos(10)).ends_with("ns"));
        assert!(BenchResult::render(Duration::from_micros(10)).ends_with("µs"));
        assert!(BenchResult::render(Duration::from_millis(10)).ends_with("ms"));
        assert!(BenchResult::render(Duration::from_secs(10)).ends_with('s'));
    }
}
