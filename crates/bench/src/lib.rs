//! Shared plumbing for the experiment binaries and micro-benchmarks.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` for the index); this library holds the
//! setup they share so each binary stays a readable script. The
//! [`harness`] module provides the in-tree timing framework the
//! `benches/` targets run on.

// `deny` rather than `forbid`: the harness's counting allocator needs
// two forwarding calls into `std::alloc::System` (see
// `harness::alloc_counter`, the single `#[allow]` site). Everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use varbuf_core::driver::Options;
use varbuf_rctree::generate::{generate_benchmark, BenchmarkSpec};
use varbuf_rctree::RoutingTree;
use varbuf_variation::{ProcessModel, SpatialKind};

/// The wire-segment refinement used by the optimization experiments
/// (Tables 2–5): legal positions every 250 µm along wires, i.e. finer
/// than the raw one-per-Steiner-edge suite that Table 1 characterizes.
pub const SEGMENT_UM: f64 = 250.0;

/// The seven named benchmarks, Table 1 order.
pub const SUITE: [&str; 7] = ["p1", "p2", "r1", "r2", "r3", "r4", "r5"];

/// Loads one named benchmark, refined for optimization.
///
/// # Panics
///
/// Panics if `name` is not in [`SUITE`].
#[must_use]
pub fn load(name: &str) -> RoutingTree {
    let spec = BenchmarkSpec::named(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    generate_benchmark(&spec).subdivided(SEGMENT_UM)
}

/// Loads one named benchmark without refinement (Table 1 counts).
///
/// # Panics
///
/// Panics if `name` is not in [`SUITE`].
#[must_use]
pub fn load_raw(name: &str) -> RoutingTree {
    let spec = BenchmarkSpec::named(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    generate_benchmark(&spec)
}

/// The paper's process model over a tree's die.
#[must_use]
pub fn model_for(tree: &RoutingTree, kind: SpatialKind) -> ProcessModel {
    ProcessModel::paper_defaults(tree.bounding_box(), kind)
}

/// Default optimization options for the experiments.
#[must_use]
pub fn options() -> Options {
    Options::default()
}

/// One row of the Table 3/4/5 experiments: the three algorithms' designs
/// on one benchmark, scored under the full within-die silicon model.
#[derive(Debug, Clone)]
pub struct RatRow {
    /// Benchmark name.
    pub bench: String,
    /// Per-algorithm results, NOM / D2D / WID order.
    pub algos: [AlgoScore; 3],
}

/// Score of one algorithm's design under the true silicon model.
#[derive(Debug, Clone)]
pub struct AlgoScore {
    /// Algorithm label (`NOM`/`D2D`/`WID`).
    pub label: &'static str,
    /// 95%-timing-yield RAT, ps.
    pub rat_95_yield: f64,
    /// Mean RAT under the silicon model, ps.
    pub rat_mean: f64,
    /// RAT standard deviation, ps.
    pub rat_sigma: f64,
    /// Yield at the paper's target (WID mean relaxed by 10%).
    pub yield_paper_target: f64,
    /// Yield at the WID design's 95%-yield RAT (the margin WID certifies).
    pub yield_wid_spec: f64,
    /// Number of buffers inserted.
    pub buffers: usize,
}

/// Runs the Table 3/4 experiment on one benchmark: optimize with all
/// three algorithms, then score every design under the full within-die
/// variation model of the given spatial kind.
///
/// # Panics
///
/// Panics if any optimizer fails (the 2P-based algorithms never hit the
/// engine caps on this suite).
#[must_use]
pub fn rat_optimization_row(name: &str, kind: SpatialKind) -> RatRow {
    rat_optimization_row_jobs(name, kind, 1)
}

/// [`rat_optimization_row`] with the statistical optimizations (D2D,
/// WID) fanned across `jobs` workers via [`varbuf_core::optimize_batch`]
/// — bit-identical to the sequential row at any job count (NOM is the
/// deterministic van Ginneken DP, which has no statistical engine to
/// parallelize and runs inline).
///
/// # Panics
///
/// Panics if any optimizer fails (the 2P-based algorithms never hit the
/// engine caps on this suite).
#[must_use]
pub fn rat_optimization_row_jobs(name: &str, kind: SpatialKind, jobs: usize) -> RatRow {
    use std::sync::Arc;
    use varbuf_core::driver::{optimize_nominal, OptimizeResult};
    use varbuf_core::pool::{optimize_batch, BatchRequest};
    use varbuf_core::yield_eval::YieldEvaluator;
    use varbuf_variation::VariationMode;

    let tree = load(name);
    let model = model_for(&tree, kind);
    let opts = options();
    let nom = optimize_nominal(&tree, &model, &opts).expect("suite optimizations succeed");
    let statistical_modes = [VariationMode::DieToDie, VariationMode::WithinDie];
    let requests: Vec<BatchRequest> = statistical_modes
        .iter()
        .map(|&mode| {
            let mut req = BatchRequest::new(&tree, &model, mode, Arc::new(opts.rule));
            req.strict = true;
            req.options = opts.dp;
            req
        })
        .collect();
    let mut results = vec![nom];
    for (r, &mode) in optimize_batch(&requests, jobs)
        .into_iter()
        .zip(&statistical_modes)
    {
        let r = r.expect("suite optimizations succeed").result;
        results.push(OptimizeResult {
            mode,
            root_rat: r.root_rat,
            assignment: r.assignment,
            stats: r.stats,
        });
    }
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);

    let analyses: Vec<_> = results
        .iter()
        .map(|r| silicon.analyze(&r.assignment))
        .collect();
    let wid = &analyses[2];
    let paper_target = wid.rat.mean() - 0.10 * wid.rat.mean().abs();
    let wid_spec = wid.rat_at_95_yield;

    let mut algos = Vec::with_capacity(3);
    for (r, a) in results.iter().zip(&analyses) {
        algos.push(AlgoScore {
            label: r.mode.label(),
            rat_95_yield: a.rat_at_95_yield,
            rat_mean: a.rat.mean(),
            rat_sigma: a.rat.std_dev(),
            yield_paper_target: a.yield_at(paper_target),
            yield_wid_spec: a.yield_at(wid_spec),
            buffers: r.buffer_count(),
        });
    }
    RatRow {
        bench: name.to_owned(),
        algos: algos.try_into().expect("exactly three algorithms"),
    }
}

/// Renders a percentage like the paper's parenthesized degradations.
#[must_use]
pub fn pct(delta: f64, base: f64) -> String {
    format!("{:+.1}%", 100.0 * delta / base.abs())
}

/// Prints a full Table 3/4-style report for one spatial kind.
pub fn print_rat_table(kind: SpatialKind, table: &str, label: &str) {
    println!("{table}: RAT optimization under the {label} spatial variation model");
    println!(
        "{:<6} | {:>10} {:>9} {:>7} {:>7} | {:>10} {:>9} {:>7} {:>7} | {:>10} {:>7} {:>7}",
        "Bench",
        "NOM RAT",
        "(vs WID)",
        "Yld10%",
        "YldSpec",
        "D2D RAT",
        "(vs WID)",
        "Yld10%",
        "YldSpec",
        "WID RAT",
        "Yld10%",
        "YldSpec",
    );

    let mut deg_sums = [0.0_f64; 2];
    let mut yld_sums = [[0.0_f64; 2]; 3];
    let n = SUITE.len() as f64;
    for name in SUITE {
        let row = rat_optimization_row(name, kind);
        let wid = &row.algos[2];
        let mut cells = String::new();
        for (i, a) in row.algos.iter().enumerate() {
            if i < 2 {
                let deg = a.rat_95_yield - wid.rat_95_yield;
                deg_sums[i] += 100.0 * deg / wid.rat_95_yield.abs();
                cells.push_str(&format!(
                    "{:>10.1} {:>9} {:>6.1}% {:>6.1}% | ",
                    a.rat_95_yield,
                    format!("({})", pct(deg, wid.rat_95_yield)),
                    100.0 * a.yield_paper_target,
                    100.0 * a.yield_wid_spec,
                ));
            } else {
                cells.push_str(&format!(
                    "{:>10.1} {:>6.1}% {:>6.1}%",
                    a.rat_95_yield,
                    100.0 * a.yield_paper_target,
                    100.0 * a.yield_wid_spec,
                ));
            }
            yld_sums[i][0] += a.yield_paper_target;
            yld_sums[i][1] += a.yield_wid_spec;
        }
        println!("{:<6} | {cells}", row.bench);
    }
    println!(
        "{:<6} | {:>10} {:>8.1}% {:>6.1}% {:>6.1}% | {:>10} {:>8.1}% {:>6.1}% {:>6.1}% | {:>10} {:>6.1}% {:>6.1}%",
        "Avg",
        "",
        deg_sums[0] / n,
        100.0 * yld_sums[0][0] / n,
        100.0 * yld_sums[0][1] / n,
        "",
        deg_sums[1] / n,
        100.0 * yld_sums[1][0] / n,
        100.0 * yld_sums[1][1] / n,
        "",
        100.0 * yld_sums[2][0] / n,
        100.0 * yld_sums[2][1] / n,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaders_work() {
        let raw = load_raw("r1");
        assert_eq!(raw.candidate_count(), 533);
        let refined = load("r1");
        assert!(refined.candidate_count() > raw.candidate_count());
        assert_eq!(refined.sink_count(), raw.sink_count());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(-5.0, -100.0), "-5.0%");
        assert_eq!(pct(2.5, 50.0), "+5.0%");
    }
}
