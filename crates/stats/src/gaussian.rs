//! Standard normal distribution primitives.
//!
//! Everything here is implemented from scratch (no external math crates).
//! The CDF uses Graeme West's double-precision algorithm (*Better
//! approximations to cumulative normal functions*, Wilmott 2005), which is
//! accurate to about `1e-15` over the whole real line including the deep
//! tails; `erf`/`erfc` are defined through it, and the quantile uses Peter
//! Acklam's rational approximation refined by one Halley step, giving near
//! machine precision on the full open interval `(0, 1)`.

use std::f64::consts::{PI, SQRT_2};

/// The standard normal probability density function `φ(x)`.
///
/// ```
/// let p = varbuf_stats::gaussian::norm_pdf(0.0);
/// assert!((p - 0.3989422804014327).abs() < 1e-15);
/// ```
#[inline]
#[must_use]
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// Implemented with West's (2005) double-precision algorithm: a rational
/// polynomial for `|x| < 7.07` and a continued fraction for the far tail,
/// accurate to ~`1e-15` everywhere with correct tail behavior down to
/// `Φ(−37) ≈ 5.7e-300`.
///
/// ```
/// let c = varbuf_stats::gaussian::norm_cdf(0.0);
/// assert!((c - 0.5).abs() < 1e-15);
/// ```
#[must_use]
pub fn norm_cdf(x: f64) -> f64 {
    let xabs = x.abs();
    let cum = if xabs > 37.0 {
        0.0
    } else {
        let e = (-xabs * xabs / 2.0).exp();
        if xabs < 7.071_067_811_865_475 {
            let mut build = 3.526_249_659_989_11e-2 * xabs + 0.700_383_064_443_688;
            build = build * xabs + 6.373_962_203_531_65;
            build = build * xabs + 33.912_866_078_383;
            build = build * xabs + 112.079_291_497_871;
            build = build * xabs + 221.213_596_169_931;
            build = build * xabs + 220.206_867_912_376;
            let num = e * build;
            let mut den = 8.838_834_764_831_84e-2 * xabs + 1.755_667_163_182_64;
            den = den * xabs + 16.064_177_579_207;
            den = den * xabs + 86.780_732_202_946_1;
            den = den * xabs + 296.564_248_779_674;
            den = den * xabs + 637.333_633_378_831;
            den = den * xabs + 793.826_512_519_948;
            den = den * xabs + 440.413_735_824_752;
            num / den
        } else {
            let mut build = xabs + 0.65;
            build = xabs + 4.0 / build;
            build = xabs + 3.0 / build;
            build = xabs + 2.0 / build;
            build = xabs + 1.0 / build;
            e / build / 2.506_628_274_631_000_5
        }
    };
    if x > 0.0 {
        1.0 - cum
    } else {
        cum
    }
}

/// The error function `erf(x) = 2·Φ(x·√2) − 1`.
///
/// Inherits the ~`1e-15` accuracy of [`norm_cdf`] for moderate `x`; for
/// `x → ∞` where `erf → 1`, absolute accuracy is retained (use
/// [`erfc_precise`] when you need *relative* accuracy in the upper tail).
///
/// ```
/// let e = varbuf_stats::gaussian::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn erf(x: f64) -> f64 {
    2.0 * norm_cdf(x * SQRT_2) - 1.0
}

/// The complementary error function `erfc(x) = 2·Φ(−x·√2)`, with good
/// *relative* accuracy in the positive tail (down to `x ≈ 26`).
///
/// ```
/// let e = varbuf_stats::gaussian::erfc_precise(10.0);
/// assert!(e > 0.0 && e < 1e-43);
/// ```
#[inline]
#[must_use]
pub fn erfc_precise(x: f64) -> f64 {
    2.0 * norm_cdf(-x * SQRT_2)
}

/// The inverse of the standard normal CDF (the quantile function),
/// `norm_quantile(Φ(x)) == x`.
///
/// Acklam's rational approximation refined with one step of Halley's
/// method against the high-accuracy [`norm_cdf`], giving ~`1e-14`
/// accuracy on `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// let z = varbuf_stats::gaussian::norm_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-12);
/// ```
#[must_use]
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile requires p in (0, 1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the high-accuracy CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Closed-form `P(T1 > T2)` for two jointly normal random variables
/// (eq. (8)–(9) of the paper).
///
/// `rho` is the correlation coefficient between `T1` and `T2`. If the
/// difference `T1 - T2` is (numerically) deterministic, the result snaps to
/// `0`, `0.5`, or `1` based on the sign of the mean difference.
///
/// ```
/// // Equal means: a coin flip regardless of variances.
/// let p = varbuf_stats::gaussian::prob_greater_normal(3.0, 3.0, 1.0, 2.0, 0.3);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn prob_greater_normal(mu1: f64, mu2: f64, sigma1: f64, sigma2: f64, rho: f64) -> f64 {
    let var = sigma1 * sigma1 - 2.0 * rho * sigma1 * sigma2 + sigma2 * sigma2;
    let sigma_diff = var.max(0.0).sqrt();
    let dmu = mu1 - mu2;
    if sigma_diff <= f64::EPSILON * (mu1.abs() + mu2.abs() + 1.0) {
        // Deterministic difference.
        return if dmu > 0.0 {
            1.0
        } else if dmu < 0.0 {
            0.0
        } else {
            0.5
        };
    }
    norm_cdf(dmu / sigma_diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((norm_pdf(0.0) - 1.0 / (2.0 * PI).sqrt()).abs() < 1e-15);
        assert!((norm_pdf(1.3) - norm_pdf(-1.3)).abs() < 1e-15);
        assert!(norm_pdf(5.0) < norm_pdf(0.0));
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209e-5 with relative accuracy.
        let e = erfc_precise(3.0);
        assert!((e - 2.209_049_699_858_544e-5).abs() / e < 1e-10);
        // Deep tail keeps a nonzero, decreasing value.
        assert!(erfc_precise(10.0) > 0.0);
        assert!(erfc_precise(10.0) < erfc_precise(9.0));
        // Negative side reflects.
        assert!((erfc_precise(-1.0) - (2.0 - erfc_precise(1.0))).abs() < 1e-14);
    }

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((norm_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-13);
        assert!((norm_cdf(-1.0) - 0.158_655_253_931_457_07).abs() < 1e-13);
        assert!((norm_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-13);
        assert!((norm_cdf(-3.0) - 1.349_898_031_630_094_6e-3).abs() < 1e-15);
        // Deep tails stay monotone and bounded.
        assert!(norm_cdf(-10.0) > 0.0);
        assert!(norm_cdf(10.0) <= 1.0);
        assert!(norm_cdf(-10.0) < 1e-20);
        assert_eq!(norm_cdf(-40.0), 0.0);
        assert_eq!(norm_cdf(40.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = -1.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let c = norm_cdf(x);
            assert!(c >= prev, "CDF not monotone at x={x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn cdf_complement_symmetry() {
        for &x in &[0.1, 0.7, 1.5, 3.3, 6.0] {
            assert!(
                (norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-14,
                "symmetry failed at {x}"
            );
        }
    }

    #[test]
    fn quantile_roundtrip() {
        for &p in &[
            1e-10,
            1e-4,
            0.01,
            0.05,
            0.3,
            0.5,
            0.77,
            0.95,
            0.99,
            1.0 - 1e-8,
        ] {
            let x = norm_quantile(p);
            let back = norm_cdf(x);
            assert!(
                (back - p).abs() < 1e-9 * (p.min(1.0 - p)).max(1e-11),
                "roundtrip failed for p={p}: x={x}, back={back}"
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(norm_quantile(0.5).abs() < 1e-12);
        assert!((norm_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-12);
        assert!((norm_quantile(0.05) + 1.644_853_626_951_472_4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "norm_quantile requires p in (0, 1)")]
    fn quantile_rejects_zero() {
        let _ = norm_quantile(0.0);
    }

    #[test]
    fn prob_greater_basics() {
        // Much larger mean dominates.
        assert!(prob_greater_normal(100.0, 0.0, 1.0, 1.0, 0.0) > 1.0 - 1e-12);
        // Symmetric case.
        let p = prob_greater_normal(1.0, 0.0, 1.0, 1.0, 0.0);
        let q = prob_greater_normal(0.0, 1.0, 1.0, 1.0, 0.0);
        assert!((p + q - 1.0).abs() < 1e-12);
        // Perfect correlation with equal sigma is deterministic.
        assert!((prob_greater_normal(2.0, 1.0, 1.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!(prob_greater_normal(1.0, 2.0, 1.0, 1.0, 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_greater_correlation_sharpens() {
        // Figure 2 of the paper: for a fixed positive mean difference the
        // probability rises with correlation (sigma of the difference falls).
        let lo = prob_greater_normal(1.0, 0.0, 1.0, 1.0, 0.0);
        let mid = prob_greater_normal(1.0, 0.0, 1.0, 1.0, 0.5);
        let hi = prob_greater_normal(1.0, 0.0, 1.0, 1.0, 0.9);
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }
}
