//! Statistical foundations for variation-aware buffer insertion.
//!
//! This crate provides every piece of numerical machinery the `varbuf`
//! workspace needs, implemented from scratch so the workspace has no
//! external math dependencies:
//!
//! * [`gaussian`] — the standard normal PDF `φ`, CDF `Φ`, its inverse
//!   (quantile), the error function, and the closed-form probability
//!   `P(T1 > T2)` for jointly normal variables (eq. (8)–(9) of the paper).
//! * [`canonical`] — sparse **first-order canonical forms**
//!   `v = v0 + Σ aᵢ·Xᵢ` over independent standard normal sources, the
//!   representation used for every statistical solution in the dynamic
//!   program (eqs. (31)–(32)).
//! * [`clark`] — the statistical `min`/`max` of two canonical forms via
//!   tightness probabilities (Clark's approximation, eqs. (38)–(43)).
//! * [`mc`] — a Monte Carlo engine that samples the underlying sources and
//!   evaluates canonical forms, used to validate the first-order model
//!   (Figure 6 of the paper).
//! * [`linfit`] — ordinary least squares for small dense systems, used by
//!   the device characterization flow (Section 3.1 / Figure 3).
//! * [`interner`] — a run-global `SourceId → dense column` interner with
//!   an arena of recycled dense rows and SoA batched moment kernels,
//!   bitwise-equivalent to the sparse forms (used for list-wide sweeps
//!   and representation cross-checks).
//! * [`histogram`] — fixed-bin histograms for PDF comparisons.
//! * [`rng`] — a deterministic SplitMix64 generator backing benchmark
//!   generation, Monte Carlo, and the property-style tests, so that the
//!   whole workspace builds hermetically with no external crates.
//!
//! # Example
//!
//! ```
//! use varbuf_stats::canonical::{CanonicalForm, SourceId};
//!
//! // T1 = 10 + 2·X0, T2 = 8 + 1·X0 + 1·X1
//! let t1 = CanonicalForm::with_terms(10.0, vec![(SourceId(0), 2.0)]);
//! let t2 = CanonicalForm::with_terms(8.0, vec![(SourceId(0), 1.0), (SourceId(1), 1.0)]);
//! let p = t1.prob_greater(&t2);
//! assert!(p > 0.5 && p < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod clark;
pub mod gaussian;
pub mod histogram;
pub mod interner;
pub mod ks;
pub mod linfit;
pub mod mc;
pub mod rng;

pub use canonical::{CanonicalForm, SourceId};
pub use clark::{stat_max, stat_min, MinMaxResult};
pub use gaussian::{norm_cdf, norm_pdf, norm_quantile, prob_greater_normal};
pub use histogram::Histogram;
pub use interner::{
    lane_axpy_var_ref, lane_dot_ref, lane_lin_comb_dot_ref, lane_variance_ref, ColumnForm,
    FormArena, FormBatch, ScatterPlanCache, TermInterner, LANES,
};
pub use ks::{ks_critical, ks_statistic};
pub use mc::{MonteCarlo, SampleVector};
pub use rng::SplitMix64;
