//! Fixed-bin histograms for PDF comparisons (Figures 3 and 6).

/// A fixed-width-bin histogram over a closed range.
///
/// Used to compare a Monte Carlo empirical density against the normal PDF
/// predicted by a canonical form.
///
/// ```
/// use varbuf_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.add(0.5);
/// h.add(9.5);
/// h.add(5.0);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            hi > lo,
            "histogram range must be non-empty (lo={lo}, hi={hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram spanning the min/max of `xs` (padded by 1%) and
    /// fills it. Empty input yields a unit-range empty histogram.
    #[must_use]
    pub fn from_samples(xs: &[f64], bins: usize) -> Self {
        let (lo, hi) = xs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
                (l.min(x), h.max(x))
            });
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
            let pad = 0.01 * (hi - lo);
            (lo - pad, hi + pad)
        } else {
            (0.0, 1.0)
        };
        let mut h = Self::new(lo, hi, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Adds one observation. Out-of-range observations are tallied in the
    /// under/overflow counters and still count toward [`Histogram::count`].
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total number of observations (including out-of-range ones).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw per-bin counts.
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of the range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin width.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Empirical density estimate per bin: `count / (total · width)`.
    ///
    /// Integrates to ≈1 when no observations fell out of range.
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Iterator over `(bin_center, density)` pairs.
    pub fn density_points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let d = self.densities();
        (0..self.counts.len())
            .map(move |i| self.bin_center(i))
            .zip(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_bins_correctly() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for &x in &[0.1, 1.1, 1.9, 2.5, 3.99] {
            h.add(x);
        }
        assert_eq!(h.bin_counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn out_of_range_tallied() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bin_counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(-3.0, 3.0, 30);
        // Uniformly spread points fully inside the range.
        for i in 0..600 {
            h.add(-2.99 + 5.98 * (i as f64) / 600.0);
        }
        let integral: f64 = h.densities().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_samples_covers_all() {
        let xs = vec![1.0, 2.0, 3.0, 10.0];
        let h = Histogram::from_samples(&xs, 5);
        assert_eq!(h.bin_counts().iter().sum::<u64>(), 4);
        assert!(h.lo() < 1.0 && h.hi() > 10.0);
    }

    #[test]
    fn from_samples_empty_is_safe() {
        let h = Histogram::from_samples(&[], 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.densities(), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
