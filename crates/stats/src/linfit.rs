//! Ordinary least squares for small dense systems.
//!
//! The device characterization flow (Section 3.1 of the paper) extracts
//! device characteristics from a nonlinear model at sampled parameter
//! values and fits the first-order sensitivities by least squares. The
//! systems involved are tiny (a handful of predictors), so a direct
//! normal-equation solve with Gaussian elimination and partial pivoting is
//! both simple and robust.

use std::error::Error;
use std::fmt;

/// Error returned when a least-squares fit cannot be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer observations than unknowns.
    Underdetermined {
        /// Number of observations provided.
        observations: usize,
        /// Number of unknown coefficients (including the intercept).
        unknowns: usize,
    },
    /// The normal-equation matrix is (numerically) singular.
    Singular,
    /// Rows have inconsistent predictor counts.
    RaggedInput,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Underdetermined {
                observations,
                unknowns,
            } => write!(
                f,
                "least-squares system is underdetermined: {observations} observations for {unknowns} unknowns"
            ),
            FitError::Singular => write!(f, "normal-equation matrix is singular"),
            FitError::RaggedInput => write!(f, "predictor rows have inconsistent lengths"),
        }
    }
}

impl Error for FitError {}

/// Result of a linear fit `y ≈ intercept + Σ coeffs[j]·x[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFit {
    /// The fitted intercept.
    pub intercept: f64,
    /// The fitted slope for each predictor.
    pub coeffs: Vec<f64>,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicts `y` for one predictor row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.coeffs.len()`.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "predictor length mismatch");
        self.intercept + self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }
}

/// Fits `y ≈ b0 + Σ bj·xj` by ordinary least squares.
///
/// `rows` holds one predictor vector per observation; all rows must have
/// the same length `p`, and at least `p + 1` observations are required.
///
/// # Errors
///
/// Returns [`FitError::RaggedInput`] for inconsistent rows,
/// [`FitError::Underdetermined`] for too few observations, and
/// [`FitError::Singular`] when the predictors are linearly dependent.
///
/// ```
/// # fn main() -> Result<(), varbuf_stats::linfit::FitError> {
/// use varbuf_stats::linfit::fit_linear;
/// let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let y = vec![1.0, 3.0, 5.0, 7.0];
/// let fit = fit_linear(&rows, &y)?;
/// assert!((fit.intercept - 1.0).abs() < 1e-9);
/// assert!((fit.coeffs[0] - 2.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999_999);
/// # Ok(())
/// # }
/// ```
// Indexed loops are the clearest idiom for the small dense matrix math
// here; iterator rewrites obscure the (i, j) symmetry.
#[allow(clippy::needless_range_loop)]
pub fn fit_linear(rows: &[Vec<f64>], y: &[f64]) -> Result<LinearFit, FitError> {
    let n = rows.len();
    let p = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|r| r.len() != p) {
        return Err(FitError::RaggedInput);
    }
    let unknowns = p + 1;
    if n != y.len() || n < unknowns {
        return Err(FitError::Underdetermined {
            observations: n.min(y.len()),
            unknowns,
        });
    }

    // Build the normal equations (XᵀX)·b = Xᵀy with an intercept column.
    let dim = unknowns;
    let mut ata = vec![vec![0.0; dim]; dim];
    let mut aty = vec![0.0; dim];
    for (row, &yi) in rows.iter().zip(y) {
        // Augmented row: [1, x1, ..., xp].
        let aug = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
        for i in 0..dim {
            aty[i] += aug(i) * yi;
            for j in i..dim {
                ata[i][j] += aug(i) * aug(j);
            }
        }
    }
    // Symmetrize.
    for i in 0..dim {
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
    }

    let b = solve_dense(ata, aty)?;

    // R² from residuals.
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|&v| (v - mean_y) * (v - mean_y)).sum();
    let ss_res: f64 = rows
        .iter()
        .zip(y)
        .map(|(row, &yi)| {
            let pred = b[0] + row.iter().zip(&b[1..]).map(|(x, c)| x * c).sum::<f64>();
            (yi - pred) * (yi - pred)
        })
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    Ok(LinearFit {
        intercept: b[0],
        coeffs: b[1..].to_vec(),
        r_squared,
    })
}

/// Solves a small dense linear system by Gaussian elimination with partial
/// pivoting. Consumes the inputs (they are scratch space).
#[allow(clippy::needless_range_loop)]
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, FitError> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-300 {
            return Err(FitError::Singular);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        let pivot = a[row][row];
        if pivot.abs() < 1e-300 {
            return Err(FitError::Singular);
        }
        x[row] = acc / pivot;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * f64::from(i)).collect();
        let fit = fit_linear(&rows, &y).expect("fit");
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.coeffs[0] - 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(&[5.0]) - 13.0).abs() < 1e-9);
    }

    #[test]
    fn two_predictors() {
        // y = 1 + 2·x1 − 3·x2, on a grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let (x1, x2) = (f64::from(i), f64::from(j));
                rows.push(vec![x1, x2]);
                y.push(1.0 + 2.0 * x1 - 3.0 * x2);
            }
        }
        let fit = fit_linear(&rows, &y).expect("fit");
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.coeffs[0] - 2.0).abs() < 1e-9);
        assert!((fit.coeffs[1] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_r_squared_below_one() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| 2.0 * f64::from(i) + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = fit_linear(&rows, &y).expect("fit");
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.99);
        assert!((fit.coeffs[0] - 2.0).abs() < 0.01);
    }

    #[test]
    fn underdetermined_rejected() {
        let rows = vec![vec![1.0, 2.0]];
        let y = vec![3.0];
        assert!(matches!(
            fit_linear(&rows, &y),
            Err(FitError::Underdetermined { .. })
        ));
    }

    #[test]
    fn singular_rejected() {
        // Two identical predictors are linearly dependent.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i), f64::from(i)]).collect();
        let y: Vec<f64> = (0..10).map(f64::from).collect();
        assert_eq!(fit_linear(&rows, &y), Err(FitError::Singular));
    }

    #[test]
    fn ragged_rejected() {
        let rows = vec![vec![1.0], vec![1.0, 2.0]];
        let y = vec![1.0, 2.0];
        assert_eq!(fit_linear(&rows, &y), Err(FitError::RaggedInput));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!FitError::Singular.to_string().is_empty());
        assert!(FitError::Underdetermined {
            observations: 1,
            unknowns: 2
        }
        .to_string()
        .contains("underdetermined"));
    }
}
