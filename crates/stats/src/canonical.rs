//! Sparse first-order canonical forms over independent standard normals.
//!
//! Every statistical quantity in the dynamic program — loading capacitance
//! `L`, required arrival time `T`, device characteristics — is represented
//! as a **first-order canonical form** (eqs. (31)–(32) of the paper):
//!
//! ```text
//! v = v0 + Σᵢ aᵢ · Xᵢ         with  Xᵢ ~ N(0, 1)  i.i.d.
//! ```
//!
//! The sensitivities `aᵢ` already absorb the standard deviation of the
//! physical parameter, so variance and covariance reduce to dot products of
//! the coefficient vectors. Terms are stored sparsely, sorted by
//! [`SourceId`], which keeps every operation `O(k)` in the number of live
//! terms and makes merging two forms a single sorted walk.

use crate::gaussian::{norm_cdf, norm_quantile};
use std::fmt;

/// Identifier of one independent `N(0, 1)` variation source.
///
/// Ids are allocated by the process-variation model: id conventions (global
/// inter-die source, spatial region sources, per-device random sources) live
/// in `varbuf-variation`; this crate treats ids as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A sparse first-order canonical form `v0 + Σ aᵢ·Xᵢ`.
///
/// Invariant: `terms` is sorted by [`SourceId`] with no duplicate ids and no
/// exactly-zero coefficients.
///
/// ```
/// use varbuf_stats::canonical::{CanonicalForm, SourceId};
/// let a = CanonicalForm::with_terms(1.0, vec![(SourceId(0), 3.0), (SourceId(2), 4.0)]);
/// assert!((a.variance() - 25.0).abs() < 1e-12);
/// assert!((a.std_dev() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalForm {
    nominal: f64,
    terms: Vec<(SourceId, f64)>,
}

impl CanonicalForm {
    /// A deterministic (variance-free) value.
    #[must_use]
    pub fn constant(nominal: f64) -> Self {
        Self {
            nominal,
            terms: Vec::new(),
        }
    }

    /// Builds a form from a nominal value and a term list.
    ///
    /// The terms may be unsorted and may contain duplicates; duplicates are
    /// summed and zero coefficients dropped.
    #[must_use]
    pub fn with_terms(nominal: f64, mut terms: Vec<(SourceId, f64)>) -> Self {
        terms.sort_unstable_by_key(|&(id, _)| id);
        let mut compact: Vec<(SourceId, f64)> = Vec::with_capacity(terms.len());
        for (id, coeff) in terms {
            match compact.last_mut() {
                Some((last_id, last_coeff)) if *last_id == id => *last_coeff += coeff,
                _ => compact.push((id, coeff)),
            }
        }
        compact.retain(|&(_, c)| c != 0.0);
        Self {
            nominal,
            terms: compact,
        }
    }

    /// The nominal (mean) value `v0`.
    #[inline]
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.nominal
    }

    /// The sorted sensitivity terms.
    #[inline]
    #[must_use]
    pub fn terms(&self) -> &[(SourceId, f64)] {
        &self.terms
    }

    /// Number of live (non-zero) sensitivity terms.
    #[inline]
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of one source (zero if absent).
    #[must_use]
    pub fn coeff(&self, id: SourceId) -> f64 {
        match self.terms.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.terms[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Variance `Σ aᵢ²` (sources are i.i.d. standard normal).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.terms.iter().map(|&(_, a)| a * a).sum()
    }

    /// Standard deviation.
    #[inline]
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Covariance with another form: `Σ aᵢ·bᵢ` over shared sources.
    #[must_use]
    pub fn covariance(&self, other: &Self) -> f64 {
        let mut cov = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (ida, a) = self.terms[i];
            let (idb, b) = other.terms[j];
            match ida.cmp(&idb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cov += a * b;
                    i += 1;
                    j += 1;
                }
            }
        }
        cov
    }

    /// Correlation coefficient with another form, clamped to `[-1, 1]`.
    ///
    /// Returns `0.0` when either form is deterministic.
    #[must_use]
    pub fn correlation(&self, other: &Self) -> f64 {
        let sa = self.std_dev();
        let sb = other.std_dev();
        if sa == 0.0 || sb == 0.0 {
            return 0.0;
        }
        (self.covariance(other) / (sa * sb)).clamp(-1.0, 1.0)
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.nominal += c;
    }

    /// Returns `self + c` without mutating.
    #[must_use]
    pub fn plus_constant(&self, c: f64) -> Self {
        let mut out = self.clone();
        out.add_constant(c);
        out
    }

    /// Scales the whole form (mean and sensitivities) by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        if k == 0.0 {
            return Self::constant(0.0);
        }
        Self {
            nominal: self.nominal * k,
            terms: self.terms.iter().map(|&(id, a)| (id, a * k)).collect(),
        }
    }

    /// Linear combination `k1·self + k2·other` as a new form.
    ///
    /// This is the workhorse of the DP key operations: wire-add, buffer-add
    /// and merge are all expressible through it. Runs in
    /// `O(k_self + k_other)` via a sorted merge.
    #[must_use]
    pub fn linear_combination(&self, k1: f64, other: &Self, k2: f64) -> Self {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (ida, a) = self.terms[i];
            let (idb, b) = other.terms[j];
            match ida.cmp(&idb) {
                std::cmp::Ordering::Less => {
                    push_nonzero(&mut terms, ida, k1 * a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    push_nonzero(&mut terms, idb, k2 * b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    push_nonzero(&mut terms, ida, k1 * a + k2 * b);
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(id, a) in &self.terms[i..] {
            push_nonzero(&mut terms, id, k1 * a);
        }
        for &(id, b) in &other.terms[j..] {
            push_nonzero(&mut terms, id, k2 * b);
        }
        Self {
            nominal: k1 * self.nominal + k2 * other.nominal,
            terms,
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        self.linear_combination(1.0, other, 1.0)
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.linear_combination(1.0, other, -1.0)
    }

    /// Adds `k · other` into `self` in place (sorted merge).
    pub fn add_scaled_assign(&mut self, other: &Self, k: f64) {
        *self = self.linear_combination(1.0, other, k);
    }

    /// The `α`-percentile `π_α = μ + z_α·σ` of this (normal) form.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)`.
    #[must_use]
    pub fn percentile(&self, alpha: f64) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return self.nominal;
        }
        self.nominal + norm_quantile(alpha) * sigma
    }

    /// `P(self > other)` under the joint-normal assumption (eq. (8)).
    #[must_use]
    pub fn prob_greater(&self, other: &Self) -> f64 {
        let diff = self.sub(other);
        let sigma = diff.std_dev();
        let dmu = diff.mean();
        if sigma <= f64::EPSILON * (self.nominal.abs() + other.nominal.abs() + 1.0) {
            return if dmu > 0.0 {
                1.0
            } else if dmu < 0.0 {
                0.0
            } else {
                0.5
            };
        }
        norm_cdf(dmu / sigma)
    }

    /// `P(self < other)`.
    #[inline]
    #[must_use]
    pub fn prob_less(&self, other: &Self) -> f64 {
        other.prob_greater(self)
    }

    /// `P(self >= x)` for a deterministic threshold `x` — the *timing yield*
    /// when `self` is the RAT at the root and `x` is the required RAT.
    #[must_use]
    pub fn prob_at_least(&self, x: f64) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return if self.nominal >= x { 1.0 } else { 0.0 };
        }
        norm_cdf((self.nominal - x) / sigma)
    }

    /// Drops terms whose coefficient magnitude is below
    /// `epsilon · max(σ, ε)` and folds their variance into nothing
    /// (conservative sparsification knob; `epsilon = 0` keeps everything).
    ///
    /// Returns the number of dropped terms.
    pub fn sparsify(&mut self, epsilon: f64) -> usize {
        if epsilon <= 0.0 {
            return 0;
        }
        let cutoff = epsilon * self.std_dev().max(f64::MIN_POSITIVE);
        let before = self.terms.len();
        self.terms.retain(|&(_, a)| a.abs() >= cutoff);
        before - self.terms.len()
    }
}

impl Default for CanonicalForm {
    fn default() -> Self {
        Self::constant(0.0)
    }
}

impl fmt::Display for CanonicalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.nominal)?;
        for &(id, a) in &self.terms {
            if a >= 0.0 {
                write!(f, " + {a:.6}·{id}")?;
            } else {
                write!(f, " - {:.6}·{id}", -a)?;
            }
        }
        Ok(())
    }
}

#[inline]
fn push_nonzero(terms: &mut Vec<(SourceId, f64)>, id: SourceId, coeff: f64) {
    if coeff != 0.0 {
        terms.push((id, coeff));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(n: f64, terms: &[(u32, f64)]) -> CanonicalForm {
        CanonicalForm::with_terms(n, terms.iter().map(|&(i, a)| (SourceId(i), a)).collect())
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = CanonicalForm::constant(4.2);
        assert_eq!(c.mean(), 4.2);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.term_count(), 0);
    }

    #[test]
    fn with_terms_sorts_and_merges() {
        let f = form(0.0, &[(3, 1.0), (1, 2.0), (3, -1.0), (2, 0.0)]);
        assert_eq!(f.terms(), &[(SourceId(1), 2.0)]);
    }

    #[test]
    fn covariance_and_correlation() {
        let a = form(0.0, &[(0, 3.0), (1, 4.0)]);
        let b = form(0.0, &[(1, 4.0), (2, 3.0)]);
        assert!((a.covariance(&b) - 16.0).abs() < 1e-12);
        assert!((a.correlation(&b) - 16.0 / 25.0).abs() < 1e-12);
        assert!((a.correlation(&a) - 1.0).abs() < 1e-12);
        let c = CanonicalForm::constant(1.0);
        assert_eq!(a.correlation(&c), 0.0);
    }

    #[test]
    fn linear_combination_merges_sources() {
        let a = form(1.0, &[(0, 1.0), (2, 2.0)]);
        let b = form(2.0, &[(1, 3.0), (2, -2.0)]);
        let s = a.add(&b);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.terms(), &[(SourceId(0), 1.0), (SourceId(1), 3.0)]);
        let d = a.sub(&a);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.term_count(), 0);
    }

    #[test]
    fn scaled_by_zero_is_constant_zero() {
        let a = form(5.0, &[(0, 1.0)]);
        let z = a.scaled(0.0);
        assert_eq!(z, CanonicalForm::constant(0.0));
    }

    #[test]
    fn percentile_matches_quantile() {
        let a = form(10.0, &[(0, 2.0)]);
        let p95 = a.percentile(0.95);
        assert!((p95 - (10.0 + 2.0 * crate::gaussian::norm_quantile(0.95))).abs() < 1e-12);
        // 5th percentile is below the mean.
        assert!(a.percentile(0.05) < 10.0);
        // Deterministic form: percentile is the value itself.
        assert_eq!(CanonicalForm::constant(7.0).percentile(0.01), 7.0);
    }

    #[test]
    fn prob_greater_shared_source_cancels() {
        // T1 = 5 + X0, T2 = 4 + X0: difference is deterministic 1 > 0.
        let t1 = form(5.0, &[(0, 1.0)]);
        let t2 = form(4.0, &[(0, 1.0)]);
        assert_eq!(t1.prob_greater(&t2), 1.0);
        assert_eq!(t2.prob_greater(&t1), 0.0);
        assert_eq!(t1.prob_greater(&t1), 0.5);
    }

    #[test]
    fn prob_greater_complementarity() {
        let t1 = form(5.0, &[(0, 1.0), (1, 0.5)]);
        let t2 = form(4.5, &[(0, 0.2), (2, 1.5)]);
        let p = t1.prob_greater(&t2);
        let q = t2.prob_greater(&t1);
        assert!((p + q - 1.0).abs() < 1e-9);
        assert!(p > 0.5);
    }

    #[test]
    fn prob_at_least_yield_semantics() {
        let rat = form(-1000.0, &[(0, 10.0)]);
        assert!((rat.prob_at_least(-1000.0) - 0.5).abs() < 1e-12);
        assert!(rat.prob_at_least(-1100.0) > 0.999);
        assert!(rat.prob_at_least(-900.0) < 0.001);
    }

    #[test]
    fn sparsify_drops_tiny_terms() {
        let mut a = form(0.0, &[(0, 1.0), (1, 1e-12)]);
        let dropped = a.sparsify(1e-6);
        assert_eq!(dropped, 1);
        assert_eq!(a.term_count(), 1);
        assert_eq!(a.sparsify(0.0), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = form(1.0, &[(0, -2.0)]);
        let s = format!("{a}");
        assert!(s.contains("X0"));
        assert!(!format!("{}", CanonicalForm::constant(0.0)).is_empty());
    }
}
