//! Sparse first-order canonical forms over independent standard normals.
//!
//! Every statistical quantity in the dynamic program — loading capacitance
//! `L`, required arrival time `T`, device characteristics — is represented
//! as a **first-order canonical form** (eqs. (31)–(32) of the paper):
//!
//! ```text
//! v = v0 + Σᵢ aᵢ · Xᵢ         with  Xᵢ ~ N(0, 1)  i.i.d.
//! ```
//!
//! The sensitivities `aᵢ` already absorb the standard deviation of the
//! physical parameter, so variance and covariance reduce to dot products of
//! the coefficient vectors. Terms are stored sparsely, sorted by
//! [`SourceId`], which keeps every operation `O(k)` in the number of live
//! terms and makes merging two forms a single sorted walk.
//!
//! # Memory layout
//!
//! Terms are stored **structure-of-arrays**: one `Vec<SourceId>` of sorted
//! ids and one parallel `Vec<f64>` of coefficients, instead of a single
//! `Vec<(SourceId, f64)>`. Two effects pay for the split on the DP hot
//! path. The id probes that drive every sorted walk read a dense `u32`
//! array (4 bytes per term instead of a 16-byte padded pair), and the
//! bulk run appends of the linear-combination kernels become straight-line
//! `out[i] = k · src[i]` loops over `f64` slices that LLVM auto-vectorizes
//! — the interleaved pair layout defeated vectorization entirely. All
//! kernels perform the identical floating-point operations in the
//! identical order, so every result is bit-for-bit what the
//! array-of-pairs layout produced.

use crate::gaussian::{norm_cdf, norm_quantile};
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Matched-position scratch for [`CanonicalForm::add_scaled_assign`]:
    /// pass 1 records the index at which each of `other`'s sources landed
    /// so the no-insertion update pass is a direct scatter instead of a
    /// second, identical probe walk over `self`'s id array.
    static ASA_POSITIONS: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Identifier of one independent `N(0, 1)` variation source.
///
/// Ids are allocated by the process-variation model: id conventions (global
/// inter-die source, spatial region sources, per-device random sources) live
/// in `varbuf-variation`; this crate treats ids as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A sparse first-order canonical form `v0 + Σ aᵢ·Xᵢ`.
///
/// Invariant: `ids` is sorted strictly ascending with no duplicates,
/// `coeffs` is the parallel coefficient array (same length), and no
/// coefficient is exactly zero.
///
/// ```
/// use varbuf_stats::canonical::{CanonicalForm, SourceId};
/// let a = CanonicalForm::with_terms(1.0, vec![(SourceId(0), 3.0), (SourceId(2), 4.0)]);
/// assert!((a.variance() - 25.0).abs() < 1e-12);
/// assert!((a.std_dev() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalForm {
    nominal: f64,
    ids: Vec<SourceId>,
    coeffs: Vec<f64>,
}

impl CanonicalForm {
    /// A deterministic (variance-free) value.
    #[must_use]
    pub fn constant(nominal: f64) -> Self {
        Self {
            nominal,
            ids: Vec::new(),
            coeffs: Vec::new(),
        }
    }

    /// Builds a form from a nominal value and a term list.
    ///
    /// The terms may be unsorted and may contain duplicates; duplicates are
    /// summed and zero coefficients dropped. Inputs that already satisfy
    /// the invariant (strictly ascending ids, no zero coefficients) — the
    /// overwhelmingly common case inside the DP operations — skip the
    /// sort-and-compact pass entirely.
    #[must_use]
    pub fn with_terms(nominal: f64, mut terms: Vec<(SourceId, f64)>) -> Self {
        if !Self::terms_canonical(&terms) {
            terms.sort_unstable_by_key(|&(id, _)| id);
            let mut compact: Vec<(SourceId, f64)> = Vec::with_capacity(terms.len());
            for (id, coeff) in terms {
                match compact.last_mut() {
                    Some((last_id, last_coeff)) if *last_id == id => *last_coeff += coeff,
                    _ => compact.push((id, coeff)),
                }
            }
            compact.retain(|&(_, c)| c != 0.0);
            terms = compact;
        }
        Self {
            nominal,
            ids: terms.iter().map(|&(id, _)| id).collect(),
            coeffs: terms.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// The nominal (mean) value `v0`.
    #[inline]
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.nominal
    }

    /// Iterates the sorted sensitivity terms as `(id, coefficient)` pairs.
    #[inline]
    pub fn terms(
        &self,
    ) -> impl ExactSizeIterator<Item = (SourceId, f64)> + DoubleEndedIterator + '_ {
        self.ids.iter().copied().zip(self.coeffs.iter().copied())
    }

    /// The sorted source ids (parallel to [`term_coeffs`](Self::term_coeffs)).
    #[inline]
    #[must_use]
    pub fn term_ids(&self) -> &[SourceId] {
        &self.ids
    }

    /// The coefficients (parallel to [`term_ids`](Self::term_ids)).
    #[inline]
    #[must_use]
    pub fn term_coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of live (non-zero) sensitivity terms.
    #[inline]
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.ids.len()
    }

    /// The coefficient of one source (zero if absent).
    #[must_use]
    pub fn coeff(&self, id: SourceId) -> f64 {
        match self.ids.binary_search(&id) {
            Ok(pos) => self.coeffs[pos],
            Err(_) => 0.0,
        }
    }

    /// Variance `Σ aᵢ²` (sources are i.i.d. standard normal).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.coeffs.iter().map(|&a| a * a).sum()
    }

    /// Standard deviation.
    #[inline]
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The `±k·σ` envelope `(mean − k·σ, mean + k·σ)` — the optimistic
    /// and pessimistic excursions a bound-guided pruner tests against a
    /// deterministic cutoff. With `k = 0` both ends are the mean.
    #[inline]
    #[must_use]
    pub fn envelope(&self, k: f64) -> (f64, f64) {
        let spread = k * self.std_dev();
        (self.nominal - spread, self.nominal + spread)
    }

    /// Covariance with another form: `Σ aᵢ·bᵢ` over shared sources.
    #[must_use]
    pub fn covariance(&self, other: &Self) -> f64 {
        let mut cov = 0.0;
        let (ia, ib) = (&self.ids[..], &other.ids[..]);
        let (mut i, mut j) = (0, 0);
        while i < ia.len() && j < ib.len() {
            let (ida, idb) = (ia[i], ib[j]);
            match ida.cmp(&idb) {
                // Unshared ids contribute nothing: gallop over the run.
                std::cmp::Ordering::Less => i += 1 + lower_bound(&ia[i + 1..], idb),
                std::cmp::Ordering::Greater => j += 1 + lower_bound(&ib[j + 1..], ida),
                std::cmp::Ordering::Equal => {
                    cov += self.coeffs[i] * other.coeffs[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        cov
    }

    /// Correlation coefficient with another form, clamped to `[-1, 1]`.
    ///
    /// Returns `0.0` when either form is deterministic.
    #[must_use]
    pub fn correlation(&self, other: &Self) -> f64 {
        let sa = self.std_dev();
        let sb = other.std_dev();
        if sa == 0.0 || sb == 0.0 {
            return 0.0;
        }
        (self.covariance(other) / (sa * sb)).clamp(-1.0, 1.0)
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.nominal += c;
    }

    /// Returns `self + c` without mutating.
    #[must_use]
    pub fn plus_constant(&self, c: f64) -> Self {
        let mut out = self.clone();
        out.add_constant(c);
        out
    }

    /// Scales the whole form (mean and sensitivities) by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        if k == 0.0 {
            return Self::constant(0.0);
        }
        Self {
            nominal: self.nominal * k,
            ids: self.ids.clone(),
            coeffs: self.coeffs.iter().map(|&a| a * k).collect(),
        }
    }

    /// Linear combination `k1·self + k2·other` as a new form.
    ///
    /// This is the workhorse of the DP key operations: wire-add, buffer-add
    /// and merge are all expressible through it. Runs in
    /// `O(k_self + k_other)` via a sorted merge.
    #[must_use]
    pub fn linear_combination(&self, k1: f64, other: &Self, k2: f64) -> Self {
        let mut out = Self {
            nominal: 0.0,
            ids: Vec::with_capacity(self.ids.len() + other.ids.len()),
            coeffs: Vec::with_capacity(self.ids.len() + other.ids.len()),
        };
        out.lin_comb_into(self, k1, other, k2);
        out
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        self.linear_combination(1.0, other, 1.0)
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.linear_combination(1.0, other, -1.0)
    }

    /// Adds `k · other` into `self` in place.
    ///
    /// Bitwise identical to `self.linear_combination(1.0, other, k)`
    /// (`1.0·a` is exact, and matched coefficients are grouped as
    /// `a + (k·b)` in both), but touches only `other`'s sources: each is
    /// located by a galloping search, so when `other`'s sources are a
    /// subset of `self`'s — the common case in the DP, where a
    /// solution's load sources were already folded into its RAT — the
    /// cost is `O(m·log k)` updates instead of an `O(k)` rewrite of the
    /// term vector. New sources shift only the tail behind them; the
    /// rare exact cancellation (a coefficient or fresh product landing
    /// on `±0.0`, which the canonical representation must drop) falls
    /// back to the allocating reference path.
    pub fn add_scaled_assign(&mut self, other: &Self, k: f64) {
        // Probe strategy: galloping wins when `other` is much sparser
        // than `self`; at comparable densities (the wire-lift shape —
        // a load whose sources are mostly already in the RAT) a linear
        // two-pointer advance is branch-predictable and ~2× cheaper.
        // The probe walk runs exactly once: matched positions are
        // recorded into a thread-local scratch so the no-insert update
        // is a direct scatter rather than a second identical walk. The
        // applied expression (`a += k·b` at the same index) is
        // unchanged, so every output bit is too.
        let linear = other.ids.len() * 4 >= self.ids.len();
        ASA_POSITIONS.with(|scratch| {
            let mut pos = scratch.borrow_mut();
            pos.clear();
            // Pass 1 (read-only): find every `other` source, counting
            // the insertions and detecting cancellations.
            let mut inserts = 0usize;
            let mut cancels = false;
            let mut i = 0usize;
            for (j, &id) in other.ids.iter().enumerate() {
                if linear {
                    while self.ids.get(i).is_some_and(|&ida| ida < id) {
                        i += 1;
                    }
                } else {
                    i += lower_bound(&self.ids[i..], id);
                }
                let cb = other.coeffs[j];
                match self.ids.get(i) {
                    Some(&ida) if ida == id => {
                        if self.coeffs[i] + k * cb == 0.0 {
                            cancels = true;
                            break;
                        }
                        pos.push(i as u32);
                        i += 1;
                    }
                    _ => {
                        if k * cb == 0.0 {
                            cancels = true;
                            break;
                        }
                        inserts += 1;
                    }
                }
            }
            if cancels {
                *self = self.linear_combination(1.0, other, k);
                return;
            }
            self.nominal += k * other.nominal;
            if inserts == 0 {
                // Every source matched, and pass 1 already knows where:
                // scatter the updates straight to the recorded indices.
                for (j, &p) in pos.iter().enumerate() {
                    self.coeffs[p as usize] += k * other.coeffs[j];
                }
            } else {
                // Backward merge into the grown tail: `w` never catches
                // up with the unread `self` prefix because every
                // remaining write covers at least the remaining reads
                // plus the pending insertions.
                let old = self.ids.len();
                self.ids.resize(old + inserts, other.ids[0]);
                self.coeffs.resize(old + inserts, 0.0);
                let (mut i, mut j) = (old as isize - 1, other.ids.len() as isize - 1);
                let mut w = (old + inserts) as isize - 1;
                while j >= 0 {
                    let idb = other.ids[j as usize];
                    let cb = other.coeffs[j as usize];
                    if i >= 0 && self.ids[i as usize] > idb {
                        self.ids[w as usize] = self.ids[i as usize];
                        self.coeffs[w as usize] = self.coeffs[i as usize];
                        i -= 1;
                    } else if i >= 0 && self.ids[i as usize] == idb {
                        let ca = self.coeffs[i as usize];
                        self.ids[w as usize] = idb;
                        self.coeffs[w as usize] = ca + k * cb;
                        i -= 1;
                        j -= 1;
                    } else {
                        self.ids[w as usize] = idb;
                        self.coeffs[w as usize] = k * cb;
                        j -= 1;
                    }
                    w -= 1;
                }
                debug_assert_eq!(w, i, "prefix below the last insertion is already in place");
            }
        });
    }

    /// Adds `k · other`'s *sensitivity terms* into `self`, leaving the
    /// nominal untouched.
    ///
    /// This is the materialization kernel of the DP's lazy wire
    /// propagation: deferring a chain of wire couplings leaves the RAT's
    /// mean already correct (it was updated eagerly, segment by segment)
    /// while the term update collapses to a single
    /// `rat += (−Σrᵢ)·load` over the terms alone. The term arithmetic
    /// is exactly [`add_scaled_assign`](Self::add_scaled_assign) — same
    /// walk, same grouping, same cancellation fallback — so a unit-length
    /// chain reproduces the eager kernel's term bits verbatim.
    pub fn add_scaled_terms_assign(&mut self, other: &Self, k: f64) {
        let nominal = self.nominal;
        self.add_scaled_assign(other, k);
        self.nominal = nominal;
    }

    /// The `α`-percentile `π_α = μ + z_α·σ` of this (normal) form.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)`.
    #[must_use]
    pub fn percentile(&self, alpha: f64) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return self.nominal;
        }
        self.nominal + norm_quantile(alpha) * sigma
    }

    /// `P(self > other)` under the joint-normal assumption (eq. (8)).
    ///
    /// Allocation-free: the difference's moments come from
    /// [`sub_stats`](Self::sub_stats) rather than a materialized form.
    #[must_use]
    pub fn prob_greater(&self, other: &Self) -> f64 {
        let (dmu, var) = self.sub_stats(other);
        let sigma = var.sqrt();
        if sigma <= f64::EPSILON * (self.nominal.abs() + other.nominal.abs() + 1.0) {
            return if dmu > 0.0 {
                1.0
            } else if dmu < 0.0 {
                0.0
            } else {
                0.5
            };
        }
        norm_cdf(dmu / sigma)
    }

    /// `P(self < other)`.
    #[inline]
    #[must_use]
    pub fn prob_less(&self, other: &Self) -> f64 {
        other.prob_greater(self)
    }

    /// `P(self >= x)` for a deterministic threshold `x` — the *timing yield*
    /// when `self` is the RAT at the root and `x` is the required RAT.
    #[must_use]
    pub fn prob_at_least(&self, x: f64) -> f64 {
        let sigma = self.std_dev();
        if sigma == 0.0 {
            return if self.nominal >= x { 1.0 } else { 0.0 };
        }
        norm_cdf((self.nominal - x) / sigma)
    }

    /// Whether a term list already satisfies the representation
    /// invariant: strictly ascending ids with no zero coefficients.
    #[inline]
    fn terms_canonical(terms: &[(SourceId, f64)]) -> bool {
        let mut prev: Option<SourceId> = None;
        for &(id, c) in terms {
            if c == 0.0 || prev.is_some_and(|p| p >= id) {
                return false;
            }
            prev = Some(id);
        }
        true
    }

    /// Overwrites `self` with `src`, reusing `self`'s term capacity.
    ///
    /// Bitwise equivalent to `*self = src.clone()` without the heap
    /// round trip once `self` has grown to its working size.
    pub fn copy_from(&mut self, src: &Self) {
        self.nominal = src.nominal;
        self.ids.clear();
        self.ids.extend_from_slice(&src.ids);
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&src.coeffs);
    }

    /// In-place [`linear_combination`](Self::linear_combination):
    /// overwrites `self` with `k1·a + k2·b`.
    ///
    /// Produces bitwise-identical terms to the allocating version — the
    /// merge walk and per-term arithmetic are the same; only the
    /// destination buffer is recycled.
    pub fn lin_comb_into(&mut self, a: &Self, k1: f64, b: &Self, k2: f64) {
        self.ids.clear();
        self.coeffs.clear();
        let (ia, ib) = (&a.ids[..], &b.ids[..]);
        let (mut i, mut j) = (0, 0);
        // Run-chunked: sibling subtrees own disjoint source-id blocks
        // (SourceLayout is keyed by node id, and node ids are assigned in
        // DFS order), so the operands interleave in long single-owner
        // runs. Gallop to the end of each run and bulk-append it scaled —
        // on the split layout the scale loop is a vectorizable
        // `out[r] = k·src[r]` over a plain `f64` slice. The pushed values
        // and their order are exactly the one-term-at-a-time walk's.
        while i < ia.len() && j < ib.len() {
            let (ida, idb) = (ia[i], ib[j]);
            match ida.cmp(&idb) {
                std::cmp::Ordering::Less => {
                    let run = i + 1 + lower_bound(&ia[i + 1..], idb);
                    append_scaled_run(
                        &mut self.ids,
                        &mut self.coeffs,
                        &ia[i..run],
                        &a.coeffs[i..run],
                        k1,
                    );
                    i = run;
                }
                std::cmp::Ordering::Greater => {
                    let run = j + 1 + lower_bound(&ib[j + 1..], ida);
                    append_scaled_run(
                        &mut self.ids,
                        &mut self.coeffs,
                        &ib[j..run],
                        &b.coeffs[j..run],
                        k2,
                    );
                    j = run;
                }
                std::cmp::Ordering::Equal => {
                    let c = k1 * a.coeffs[i] + k2 * b.coeffs[j];
                    if c != 0.0 {
                        self.ids.push(ida);
                        self.coeffs.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        append_scaled_run(
            &mut self.ids,
            &mut self.coeffs,
            &ia[i..],
            &a.coeffs[i..],
            k1,
        );
        append_scaled_run(
            &mut self.ids,
            &mut self.coeffs,
            &ib[j..],
            &b.coeffs[j..],
            k2,
        );
        self.nominal = k1 * a.nominal + k2 * b.nominal;
    }

    /// Fused buffer kernel: overwrites `self` with `(k1·a + k2·b) − c`
    /// in a single three-way merge walk.
    ///
    /// Bitwise identical to
    /// `a.linear_combination(k1, b, k2).sub(c)`: every surviving
    /// coefficient is grouped as `1.0·(k1·aᵢ + k2·bᵢ) + (−1.0)·cᵢ`,
    /// which IEEE-754 round-to-nearest evaluates to the same bits as the
    /// two-pass chain (`1.0·x = x` and `x + (−y) = x − y` exactly, and a
    /// `±0.0` intermediate dropped by the two-pass version leaves
    /// `−cᵢ`, which `±0.0 − cᵢ` also yields for nonzero `cᵢ`).
    pub fn lin_comb_sub_into(&mut self, a: &Self, k1: f64, b: &Self, k2: f64, c: &Self) {
        // Two chunked passes: the run-merged combination, then the small
        // subtrahend (`c` is a device form — a handful of terms) folded
        // in by the galloping in-place kernel. Each pass is documented
        // bit-equal to its allocating reference, so the chain reproduces
        // `a.linear_combination(k1, b, k2).sub(c)` exactly — including
        // the `±0.0` cases: a combination term that cancels is dropped
        // by the run append and the subtraction then *inserts* `−cᵢ`,
        // the same bits `±0.0 − cᵢ` yields for the nonzero `cᵢ` a
        // canonical form carries.
        self.lin_comb_into(a, k1, b, k2);
        self.add_scaled_assign(c, -1.0);
    }

    /// Mean and variance of `self − other` without materializing the
    /// difference form.
    ///
    /// Bitwise identical to `(self.sub(other).mean(),
    /// self.sub(other).variance())`: the merged walk visits the union of
    /// ids in the same ascending order and squares the same surviving
    /// coefficients. Exact cancellations are skipped rather than added,
    /// because the materialized path drops them via the nonzero filter —
    /// and `variance()`'s `Sum` fold starts at `-0.0`, so a difference
    /// whose terms all cancel yields `-0.0`, which an unconditional
    /// `+= 0.0` would flip to `+0.0`.
    #[must_use]
    pub fn sub_stats(&self, other: &Self) -> (f64, f64) {
        let mut var = -0.0;
        let (ia, ib) = (&self.ids[..], &other.ids[..]);
        let (mut i, mut j) = (0, 0);
        // Run-chunked like `lin_comb_into`: unmatched ids come in long
        // single-owner runs, squared here in the same ascending order
        // the one-term walk used (`(−b)·(−b)` and `b·b` are the same
        // bits, so the run loops square the raw coefficients).
        while i < ia.len() && j < ib.len() {
            let (ida, idb) = (ia[i], ib[j]);
            match ida.cmp(&idb) {
                std::cmp::Ordering::Less => {
                    let run = i + 1 + lower_bound(&ia[i + 1..], idb);
                    for &a in &self.coeffs[i..run] {
                        var += a * a;
                    }
                    i = run;
                }
                std::cmp::Ordering::Greater => {
                    let run = j + 1 + lower_bound(&ib[j + 1..], ida);
                    for &b in &other.coeffs[j..run] {
                        var += b * b;
                    }
                    j = run;
                }
                std::cmp::Ordering::Equal => {
                    let d = self.coeffs[i] - other.coeffs[j];
                    i += 1;
                    j += 1;
                    if d != 0.0 {
                        // dropped by the nonzero filter in the materialized path
                        var += d * d;
                    }
                }
            }
        }
        for &a in &self.coeffs[i..] {
            var += a * a;
        }
        for &b in &other.coeffs[j..] {
            var += b * b;
        }
        (self.nominal - other.nominal, var)
    }

    /// Drops terms whose coefficient magnitude is below
    /// `epsilon · max(σ, ε)` and folds their variance into nothing
    /// (conservative sparsification knob; `epsilon = 0` keeps everything).
    ///
    /// Returns the number of dropped terms.
    pub fn sparsify(&mut self, epsilon: f64) -> usize {
        if epsilon <= 0.0 {
            return 0;
        }
        let cutoff = epsilon * self.std_dev().max(f64::MIN_POSITIVE);
        let before = self.ids.len();
        let mut w = 0usize;
        for r in 0..before {
            if self.coeffs[r].abs() >= cutoff {
                self.ids[w] = self.ids[r];
                self.coeffs[w] = self.coeffs[r];
                w += 1;
            }
        }
        self.ids.truncate(w);
        self.coeffs.truncate(w);
        before - w
    }
}

impl Default for CanonicalForm {
    fn default() -> Self {
        Self::constant(0.0)
    }
}

impl fmt::Display for CanonicalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.nominal)?;
        for (id, a) in self.terms() {
            if a >= 0.0 {
                write!(f, " + {a:.6}·{id}")?;
            } else {
                write!(f, " - {:.6}·{id}", -a)?;
            }
        }
        Ok(())
    }
}

/// Appends one single-owner run scaled by `k`, preserving the
/// term-at-a-time reference semantics: each product `k·c` is computed in
/// order and exact zeros are dropped.
///
/// The products land in a branch-free `out[r] = k·src[r]` loop (the
/// vectorizable fast path); the rare run containing an exact zero product
/// (`k` of zero magnitude or a denormal underflow) is re-compacted in a
/// second scan, which yields the same surviving values in the same order
/// as pushing one term at a time.
#[inline]
fn append_scaled_run(
    ids_out: &mut Vec<SourceId>,
    coeffs_out: &mut Vec<f64>,
    ids: &[SourceId],
    coeffs: &[f64],
    k: f64,
) {
    let start = coeffs_out.len();
    coeffs_out.extend(coeffs.iter().map(|&c| k * c));
    if coeffs_out[start..].iter().all(|&c| c != 0.0) {
        ids_out.extend_from_slice(ids);
        return;
    }
    let mut w = start;
    for (r, &id) in ids.iter().enumerate() {
        let c = coeffs_out[start + r];
        if c != 0.0 {
            coeffs_out[w] = c;
            ids_out.push(id);
            w += 1;
        }
    }
    coeffs_out.truncate(w);
}

/// Index of the first id `>= id`: a galloping probe (1, 2, 4, …)
/// brackets the answer, a binary search pins it. Starting the gallop at
/// the front makes repeated searches from a moving lower bound cheap
/// when successive ids land close together.
fn lower_bound(ids: &[SourceId], id: SourceId) -> usize {
    let mut hi = 1usize;
    while hi <= ids.len() && ids[hi - 1] < id {
        hi <<= 1;
    }
    let lo = (hi >> 1).min(ids.len());
    let hi = hi.min(ids.len());
    lo + ids[lo..hi].partition_point(|&t| t < id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn form(n: f64, terms: &[(u32, f64)]) -> CanonicalForm {
        CanonicalForm::with_terms(n, terms.iter().map(|&(i, a)| (SourceId(i), a)).collect())
    }

    fn terms_of(f: &CanonicalForm) -> Vec<(SourceId, f64)> {
        f.terms().collect()
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = CanonicalForm::constant(4.2);
        assert_eq!(c.mean(), 4.2);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.term_count(), 0);
    }

    #[test]
    fn envelope_brackets_the_mean() {
        let f = form(10.0, &[(0, 3.0), (1, 4.0)]); // σ = 5
        assert_eq!(f.envelope(0.0), (10.0, 10.0));
        let (lo, hi) = f.envelope(2.0);
        assert!((lo - 0.0).abs() < 1e-12);
        assert!((hi - 20.0).abs() < 1e-12);
        // A constant's envelope is degenerate at any k.
        assert_eq!(CanonicalForm::constant(-3.0).envelope(6.0), (-3.0, -3.0));
    }

    #[test]
    fn with_terms_sorts_and_merges() {
        let f = form(0.0, &[(3, 1.0), (1, 2.0), (3, -1.0), (2, 0.0)]);
        assert_eq!(terms_of(&f), vec![(SourceId(1), 2.0)]);
    }

    #[test]
    fn covariance_and_correlation() {
        let a = form(0.0, &[(0, 3.0), (1, 4.0)]);
        let b = form(0.0, &[(1, 4.0), (2, 3.0)]);
        assert!((a.covariance(&b) - 16.0).abs() < 1e-12);
        assert!((a.correlation(&b) - 16.0 / 25.0).abs() < 1e-12);
        assert!((a.correlation(&a) - 1.0).abs() < 1e-12);
        let c = CanonicalForm::constant(1.0);
        assert_eq!(a.correlation(&c), 0.0);
    }

    #[test]
    fn linear_combination_merges_sources() {
        let a = form(1.0, &[(0, 1.0), (2, 2.0)]);
        let b = form(2.0, &[(1, 3.0), (2, -2.0)]);
        let s = a.add(&b);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(terms_of(&s), vec![(SourceId(0), 1.0), (SourceId(1), 3.0)]);
        let d = a.sub(&a);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.term_count(), 0);
    }

    #[test]
    fn scaled_by_zero_is_constant_zero() {
        let a = form(5.0, &[(0, 1.0)]);
        let z = a.scaled(0.0);
        assert_eq!(z, CanonicalForm::constant(0.0));
    }

    #[test]
    fn percentile_matches_quantile() {
        let a = form(10.0, &[(0, 2.0)]);
        let p95 = a.percentile(0.95);
        assert!((p95 - (10.0 + 2.0 * crate::gaussian::norm_quantile(0.95))).abs() < 1e-12);
        // 5th percentile is below the mean.
        assert!(a.percentile(0.05) < 10.0);
        // Deterministic form: percentile is the value itself.
        assert_eq!(CanonicalForm::constant(7.0).percentile(0.01), 7.0);
    }

    #[test]
    fn prob_greater_shared_source_cancels() {
        // T1 = 5 + X0, T2 = 4 + X0: difference is deterministic 1 > 0.
        let t1 = form(5.0, &[(0, 1.0)]);
        let t2 = form(4.0, &[(0, 1.0)]);
        assert_eq!(t1.prob_greater(&t2), 1.0);
        assert_eq!(t2.prob_greater(&t1), 0.0);
        assert_eq!(t1.prob_greater(&t1), 0.5);
    }

    #[test]
    fn prob_greater_complementarity() {
        let t1 = form(5.0, &[(0, 1.0), (1, 0.5)]);
        let t2 = form(4.5, &[(0, 0.2), (2, 1.5)]);
        let p = t1.prob_greater(&t2);
        let q = t2.prob_greater(&t1);
        assert!((p + q - 1.0).abs() < 1e-9);
        assert!(p > 0.5);
    }

    #[test]
    fn prob_at_least_yield_semantics() {
        let rat = form(-1000.0, &[(0, 10.0)]);
        assert!((rat.prob_at_least(-1000.0) - 0.5).abs() < 1e-12);
        assert!(rat.prob_at_least(-1100.0) > 0.999);
        assert!(rat.prob_at_least(-900.0) < 0.001);
    }

    #[test]
    fn sparsify_drops_tiny_terms() {
        let mut a = form(0.0, &[(0, 1.0), (1, 1e-12)]);
        let dropped = a.sparsify(1e-6);
        assert_eq!(dropped, 1);
        assert_eq!(a.term_count(), 1);
        assert_eq!(a.sparsify(0.0), 0);
    }

    #[test]
    fn with_terms_fast_path_keeps_sorted_inputs() {
        // Already-canonical input: fast path must preserve it verbatim.
        let terms = vec![(SourceId(1), 2.0), (SourceId(3), -1.5), (SourceId(9), 0.25)];
        let f = CanonicalForm::with_terms(1.0, terms.clone());
        assert_eq!(terms_of(&f), terms);
        // A zero coefficient forces the slow path and is dropped.
        let g = CanonicalForm::with_terms(1.0, vec![(SourceId(1), 2.0), (SourceId(3), 0.0)]);
        assert_eq!(g.term_count(), 1);
        // Equal ids force the slow path and are summed.
        let h = CanonicalForm::with_terms(0.0, vec![(SourceId(4), 1.0), (SourceId(4), 2.0)]);
        assert_eq!(terms_of(&h), vec![(SourceId(4), 3.0)]);
    }

    #[test]
    fn lin_comb_into_matches_allocating_version_bitwise() {
        let a = form(1.25, &[(0, 1.0), (2, 2.0), (7, -0.5)]);
        let b = form(-2.5, &[(1, 3.0), (2, -2.0), (9, 4.0)]);
        for (k1, k2) in [(1.0, 1.0), (1.0, -1.0), (0.3, 0.7), (-1.7, 2.9)] {
            let legacy = a.linear_combination(k1, &b, k2);
            let mut out = form(99.0, &[(50, 123.0)]);
            out.lin_comb_into(&a, k1, &b, k2);
            assert_eq!(legacy.mean().to_bits(), out.mean().to_bits());
            assert_eq!(legacy.term_count(), out.term_count());
            for (x, y) in legacy.terms().zip(out.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn append_scaled_run_drops_exact_zero_products() {
        // k = 0 zeroes a whole run: the compaction path must drop every
        // product, exactly like pushing one term at a time would.
        let a = form(1.0, &[(0, 1.0), (4, 3.0)]);
        let b = form(2.0, &[(1, 5.0), (2, 2.0)]);
        let out = a.linear_combination(1.0, &b, 0.0);
        assert_eq!(terms_of(&out), vec![(SourceId(0), 1.0), (SourceId(4), 3.0)]);
        // And a partial-zero run (underflow to 0.0) keeps the survivors
        // in order.
        let c = form(0.0, &[(1, 5e-324), (2, 1.0)]);
        let scaled = CanonicalForm::constant(0.0).linear_combination(1.0, &c, 0.5);
        assert_eq!(terms_of(&scaled), vec![(SourceId(2), 0.5)]);
    }

    #[test]
    fn add_scaled_assign_matches_linear_combination_bitwise() {
        let cases: Vec<(CanonicalForm, CanonicalForm, f64)> = vec![
            // Subset: every `other` source already present (pure update).
            (
                form(1.25, &[(0, 1.0), (2, 2.0), (7, -0.5), (11, 3.0)]),
                form(-2.5, &[(2, -0.25), (11, 4.0)]),
                -1.7,
            ),
            // Disjoint: every source inserted, interleaved and at both ends.
            (
                form(0.5, &[(2, 2.0), (7, -0.5)]),
                form(1.0, &[(0, 1.0), (4, 3.0), (9, -2.0)]),
                0.3,
            ),
            // Mixed matches and insertions.
            (
                form(-1.0, &[(1, 1.0), (5, -2.0), (6, 0.75)]),
                form(2.0, &[(1, 3.0), (2, -2.0), (6, 0.5), (9, 4.0)]),
                2.9,
            ),
            // Exact cancellation on id 3 → the canonical form must drop it.
            (
                form(0.0, &[(3, 1.5), (4, 1.0)]),
                form(0.0, &[(3, 1.5), (8, 2.0)]),
                -1.0,
            ),
            // k = 0 zeroes every product (cancellation fallback).
            (
                form(1.0, &[(0, 1.0)]),
                form(2.0, &[(0, 5.0), (1, 2.0)]),
                0.0,
            ),
            // Empty operands on either side.
            (form(4.0, &[]), form(1.0, &[(2, 1.0)]), 1.0),
            (form(4.0, &[(2, 1.0)]), form(1.0, &[]), 1.0),
        ];
        for (a, b, k) in cases {
            let reference = a.linear_combination(1.0, &b, k);
            let mut inplace = a.clone();
            inplace.add_scaled_assign(&b, k);
            assert_eq!(reference.mean().to_bits(), inplace.mean().to_bits());
            assert_eq!(
                reference.term_count(),
                inplace.term_count(),
                "{reference} vs {inplace}"
            );
            for (x, y) in reference.terms().zip(inplace.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn add_scaled_terms_assign_updates_terms_and_fixes_nominal() {
        let cases: Vec<(CanonicalForm, CanonicalForm, f64)> = vec![
            // Pure update, insertions, mixed, and the cancellation
            // fallback path — mirroring the add_scaled_assign matrix.
            (
                form(1.25, &[(0, 1.0), (2, 2.0), (7, -0.5), (11, 3.0)]),
                form(-2.5, &[(2, -0.25), (11, 4.0)]),
                -1.7,
            ),
            (
                form(0.5, &[(2, 2.0), (7, -0.5)]),
                form(1.0, &[(0, 1.0), (4, 3.0), (9, -2.0)]),
                0.3,
            ),
            (
                form(0.0, &[(3, 1.5), (4, 1.0)]),
                form(7.0, &[(3, 1.5), (8, 2.0)]),
                -1.0,
            ),
        ];
        for (a, b, k) in cases {
            let mut full = a.clone();
            full.add_scaled_assign(&b, k);
            let mut terms_only = a.clone();
            terms_only.add_scaled_terms_assign(&b, k);
            // Nominal frozen, every term bit equal to the full kernel.
            assert_eq!(terms_only.mean().to_bits(), a.mean().to_bits());
            assert_eq!(terms_only.term_count(), full.term_count());
            for (x, y) in full.terms().zip(terms_only.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn lin_comb_sub_into_matches_two_pass_chain_bitwise() {
        let a = form(1.25, &[(0, 1.0), (2, 2.0), (7, -0.5)]);
        let b = form(-2.5, &[(1, 3.0), (2, -2.0), (7, 0.5), (9, 4.0)]);
        let c = form(0.75, &[(0, 0.25), (2, -1.4), (8, 2.0), (9, 4.0)]);
        for (k1, k2) in [(1.0, -0.2), (1.0, 1.0), (0.3, 0.7)] {
            let legacy = a.linear_combination(k1, &b, k2).sub(&c);
            let mut out = form(99.0, &[(50, 123.0)]);
            out.lin_comb_sub_into(&a, k1, &b, k2, &c);
            assert_eq!(legacy.mean().to_bits(), out.mean().to_bits());
            assert_eq!(legacy.term_count(), out.term_count(), "{legacy} vs {out}");
            for (x, y) in legacy.terms().zip(out.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
        // Exact cancellation in the intermediate (k1·a + k2·b ≡ 0 on id 7)
        // while c also carries id 7: the fused kernel must still match.
        let legacy = a.linear_combination(1.0, &b, 1.0).sub(&c);
        let mut out = CanonicalForm::default();
        out.lin_comb_sub_into(&a, 1.0, &b, 1.0, &c);
        assert_eq!(legacy, out);
    }

    #[test]
    fn sub_stats_matches_materialized_difference_bitwise() {
        let a = form(5.0, &[(0, 1.0), (2, 2.0), (7, -0.5)]);
        let b = form(4.0, &[(1, 3.0), (2, 2.0), (9, 4.0)]);
        let diff = a.sub(&b);
        let (dmu, var) = a.sub_stats(&b);
        assert_eq!(dmu.to_bits(), diff.mean().to_bits());
        assert_eq!(var.to_bits(), diff.variance().to_bits());
        // Shared source cancels exactly (id 2): still identical.
        let (_, var2) = a.sub_stats(&a);
        assert_eq!(var2.to_bits(), a.sub(&a).variance().to_bits());
    }

    #[test]
    fn copy_from_reuses_capacity() {
        let src = form(3.0, &[(0, 1.0), (5, 2.0)]);
        let mut dst = form(0.0, &[(1, 9.0), (2, 9.0), (3, 9.0)]);
        let cap = 3; // dst grew to at least 3 terms
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert!(dst.coeffs.capacity() >= cap);
    }

    #[test]
    fn display_is_nonempty() {
        let a = form(1.0, &[(0, -2.0)]);
        let s = format!("{a}");
        assert!(s.contains("X0"));
        assert!(!format!("{}", CanonicalForm::constant(0.0)).is_empty());
    }
}
