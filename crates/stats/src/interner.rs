//! Run-global term interning and SoA batched kernels.
//!
//! The DP's sparse canonical forms pay a branchy sorted-merge per binary
//! operation. For workloads that evaluate moments over *whole solution
//! lists* — batched covariance, variance sweeps, representation
//! cross-checks — a denser layout wins: a per-run [`TermInterner`] maps
//! every live [`SourceId`] to a dense column index, so a form becomes a
//! fixed-stride `f64` row ([`ColumnForm`]) and a list of forms becomes a
//! contiguous row-major matrix ([`FormBatch`]) whose reductions are flat
//! slice sweeps that autovectorize.
//!
//! # Determinism contract
//!
//! Columns are assigned in **ascending [`SourceId`] order**, so iterating
//! a row left to right visits sources in exactly the order the sparse
//! sorted-merge walk does. Absent sources hold `0.0`, and every moment
//! kernel skips zero slots so it replays *exactly* the sequence of adds
//! the sparse walk performs — including the sign of the empty sum
//! (`f64`'s `Sum` fold starts at `-0.0`, so a term-free form has
//! `variance() == -0.0`). The kernels here are therefore **bitwise
//! identical** to their sparse counterparts in [`CanonicalForm`] —
//! pinned by the `determinism` suite in `varbuf-core`.
//!
//! # Arena lifetime
//!
//! Dense rows are recycled through a [`FormArena`]: `take` hands out a
//! zeroed row, `put` returns its buffer for reuse. The arena is per-run
//! scratch (one per worker, never shared), mirroring the `SolPool`
//! recycling discipline of the DP engine.

use crate::canonical::{CanonicalForm, SourceId};

/// `Σ aᵢ²` over a dense row, bitwise identical to the sparse
/// [`CanonicalForm::variance`]: zero slots are skipped, so the `Sum`
/// fold sees exactly the sparse term sequence (and an all-zero row
/// yields the same `-0.0` an empty sparse sum does).
fn row_variance(row: &[f64]) -> f64 {
    row.iter().filter(|&&a| a != 0.0).map(|&a| a * a).sum()
}

/// Dot product of two dense rows, bitwise identical to the sparse
/// [`CanonicalForm::covariance`] walk: only slots nonzero in both rows
/// (the shared sources) contribute, folded from `0.0`.
fn row_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut cov = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if x != 0.0 && y != 0.0 {
            cov += x * y;
        }
    }
    cov
}

/// A run-global map from sparse [`SourceId`]s to dense column indices.
///
/// Built once per optimization run from the enumerable universe of
/// sources a net can touch. Columns are assigned in ascending id order
/// (see the module docs for why that matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermInterner {
    /// Column → id, strictly ascending.
    ids: Vec<SourceId>,
}

impl TermInterner {
    /// Builds an interner from an arbitrary iterator of source ids
    /// (sorted and deduplicated internally).
    #[must_use]
    pub fn new(sources: impl IntoIterator<Item = SourceId>) -> Self {
        let mut ids: Vec<SourceId> = sources.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Builds an interner from ids that are already strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the input is not strictly ascending.
    #[must_use]
    pub fn from_sorted(ids: Vec<SourceId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "interner ids must be strictly ascending"
        );
        Self { ids }
    }

    /// Number of interned columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the interner is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The dense column of `id`, or `None` if it was never interned.
    #[must_use]
    pub fn column(&self, id: SourceId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The source id stored at `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.len()`.
    #[must_use]
    pub fn id(&self, col: usize) -> SourceId {
        self.ids[col]
    }

    /// The interned ids in column (ascending) order.
    #[must_use]
    pub fn ids(&self) -> &[SourceId] {
        &self.ids
    }
}

/// A canonical form in dense column representation: `nominal` plus one
/// coefficient slot per interned column (0.0 = source absent).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnForm {
    nominal: f64,
    cols: Vec<f64>,
}

impl ColumnForm {
    /// Scatters a sparse form into dense columns.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source the interner doesn't know.
    #[must_use]
    pub fn from_canonical(interner: &TermInterner, form: &CanonicalForm) -> Self {
        let mut out = Self {
            nominal: form.mean(),
            cols: vec![0.0; interner.len()],
        };
        out.scatter(interner, form);
        out
    }

    /// Re-scatters `form` into this row, reusing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source the interner doesn't know.
    pub fn scatter(&mut self, interner: &TermInterner, form: &CanonicalForm) {
        self.cols.clear();
        self.cols.resize(interner.len(), 0.0);
        self.nominal = form.mean();
        for &(id, a) in form.terms() {
            let col = interner
                .column(id)
                .expect("form references a source outside the interner");
            self.cols[col] = a;
        }
    }

    /// Gathers the row back into a sparse canonical form.
    ///
    /// Bitwise identical to the original: nonzero columns are emitted in
    /// column order, which is ascending id order.
    #[must_use]
    pub fn to_canonical(&self, interner: &TermInterner) -> CanonicalForm {
        let terms: Vec<(SourceId, f64)> = self
            .cols
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0.0)
            .map(|(col, &c)| (interner.id(col), c))
            .collect();
        CanonicalForm::with_terms(self.nominal, terms)
    }

    /// The nominal (mean) value.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.nominal
    }

    /// Variance `Σ aᵢ²` over the dense row (one sequential sweep).
    ///
    /// Bitwise identical to [`CanonicalForm::variance`]: zero slots are
    /// skipped, so the fold sees exactly the sparse term sequence.
    #[must_use]
    pub fn variance(&self) -> f64 {
        row_variance(&self.cols)
    }

    /// Covariance against another row of the same width (one sequential
    /// dot sweep).
    ///
    /// Bitwise identical to [`CanonicalForm::covariance`]: only slots
    /// nonzero in *both* rows (the shared sources) contribute, folded
    /// from `0.0` exactly like the sparse walk.
    ///
    /// # Panics
    ///
    /// Panics if the rows come from different-width interners.
    #[must_use]
    pub fn covariance(&self, other: &Self) -> f64 {
        assert_eq!(self.cols.len(), other.cols.len(), "interner width mismatch");
        row_dot(&self.cols, &other.cols)
    }

    /// The dense coefficient row.
    #[must_use]
    pub fn columns(&self) -> &[f64] {
        &self.cols
    }

    /// The `±k·σ` envelope `(mean − k·σ, mean + k·σ)` of this row —
    /// matches [`CanonicalForm::envelope`] bitwise (the variance sweep is
    /// [`row_variance`], identical to the sparse fold).
    #[must_use]
    pub fn envelope(&self, k: f64) -> (f64, f64) {
        let spread = k * self.variance().sqrt();
        (self.nominal - spread, self.nominal + spread)
    }
}

/// Recycles [`ColumnForm`] buffers, the dense analogue of the DP's
/// solution pool. Per-run scratch — never shared between workers.
#[derive(Debug, Default)]
pub struct FormArena {
    spare: Vec<Vec<f64>>,
}

impl FormArena {
    /// Spare rows to retain; beyond this, returned rows really are freed.
    const KEEP: usize = 32;

    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed row sized to `interner`, reusing a spare buffer if one
    /// is available.
    #[must_use]
    pub fn take(&mut self, interner: &TermInterner) -> ColumnForm {
        let mut cols = self.spare.pop().unwrap_or_default();
        cols.clear();
        cols.resize(interner.len(), 0.0);
        ColumnForm { nominal: 0.0, cols }
    }

    /// Returns a row's buffer to the arena.
    pub fn put(&mut self, form: ColumnForm) {
        if self.spare.len() < Self::KEEP && form.cols.capacity() > 0 {
            self.spare.push(form.cols);
        }
    }

    /// Number of spare buffers currently held.
    #[must_use]
    pub fn spare_count(&self) -> usize {
        self.spare.len()
    }
}

/// A solution list's forms in SoA layout: nominals contiguous, term
/// columns contiguous row-major — the shape whose per-list reductions
/// are single sequential sweeps over flat `f64` slices.
#[derive(Debug, Clone, Default)]
pub struct FormBatch {
    width: usize,
    nominals: Vec<f64>,
    rows: Vec<f64>,
}

impl FormBatch {
    /// An empty batch over `interner`'s column space.
    #[must_use]
    pub fn new(interner: &TermInterner) -> Self {
        Self {
            width: interner.len(),
            nominals: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Clears the batch, retaining capacity, and rebinds it to
    /// `interner`'s width.
    pub fn reset(&mut self, interner: &TermInterner) {
        self.width = interner.len();
        self.nominals.clear();
        self.rows.clear();
    }

    /// Appends one sparse form as a dense row.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source outside the interner.
    pub fn push(&mut self, interner: &TermInterner, form: &CanonicalForm) {
        assert_eq!(interner.len(), self.width, "interner width mismatch");
        self.nominals.push(form.mean());
        let start = self.rows.len();
        self.rows.resize(start + self.width, 0.0);
        let row = &mut self.rows[start..];
        for &(id, a) in form.terms() {
            let col = interner
                .column(id)
                .expect("form references a source outside the interner");
            row[col] = a;
        }
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nominals.len()
    }

    /// Whether the batch has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nominals.is_empty()
    }

    /// The contiguous nominal values.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.nominals
    }

    /// One dense row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Batched variance: `out[i] = Σⱼ row[i][j]²` for every row, one
    /// sequential pass over the matrix. Bitwise identical to calling
    /// [`CanonicalForm::variance`] per form (see [`row_variance`]).
    pub fn variances_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.len()).map(|i| row_variance(self.row(i))));
    }

    /// Batched covariance against a probe row:
    /// `out[i] = Σⱼ row[i][j]·probe[j]`, one sequential pass. Bitwise
    /// identical to [`CanonicalForm::covariance`] per form (see
    /// [`row_dot`]).
    ///
    /// # Panics
    ///
    /// Panics if `probe`'s width differs from the batch's.
    pub fn covariances_with_into(&self, probe: &ColumnForm, out: &mut Vec<f64>) {
        assert_eq!(probe.cols.len(), self.width, "interner width mismatch");
        out.clear();
        out.extend((0..self.len()).map(|i| row_dot(self.row(i), &probe.cols)));
    }

    /// Batched `±k·σ` envelopes: `lo[i] = mean[i] − k·σ[i]`,
    /// `hi[i] = mean[i] + k·σ[i]`, one variance sweep per row. Matches
    /// [`ColumnForm::envelope`] (and hence [`CanonicalForm::envelope`])
    /// bitwise per element.
    pub fn envelopes_into(&self, k: f64, lo: &mut Vec<f64>, hi: &mut Vec<f64>) {
        lo.clear();
        hi.clear();
        for i in 0..self.len() {
            let spread = k * row_variance(self.row(i)).sqrt();
            lo.push(self.nominals[i] - spread);
            hi.push(self.nominals[i] + spread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_form(rng: &mut SplitMix64, universe: &[SourceId], max_terms: usize) -> CanonicalForm {
        let n = (rng.next_u64() as usize) % (max_terms + 1);
        let mut terms = Vec::with_capacity(n);
        for _ in 0..n {
            let id = universe[(rng.next_u64() as usize) % universe.len()];
            let coeff = rng.next_f64() * 4.0 - 2.0;
            terms.push((id, coeff));
        }
        CanonicalForm::with_terms(rng.next_f64() * 10.0 - 5.0, terms)
    }

    #[test]
    fn interner_assigns_ascending_columns() {
        let it = TermInterner::new([SourceId(9), SourceId(2), SourceId(5), SourceId(2)]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.ids(), &[SourceId(2), SourceId(5), SourceId(9)]);
        assert_eq!(it.column(SourceId(5)), Some(1));
        assert_eq!(it.column(SourceId(7)), None);
        assert_eq!(it.id(2), SourceId(9));
    }

    #[test]
    fn column_roundtrip_is_bitwise_identity() {
        let mut rng = SplitMix64::new(42);
        let universe: Vec<SourceId> = (0..40).map(SourceId).collect();
        let it = TermInterner::new(universe.iter().copied());
        for _ in 0..50 {
            let f = random_form(&mut rng, &universe, 12);
            let dense = ColumnForm::from_canonical(&it, &f);
            let back = dense.to_canonical(&it);
            assert_eq!(back, f);
            assert_eq!(dense.mean().to_bits(), f.mean().to_bits());
            assert_eq!(dense.variance().to_bits(), f.variance().to_bits());
        }
    }

    #[test]
    fn dense_covariance_matches_sparse_bitwise() {
        let mut rng = SplitMix64::new(7);
        let universe: Vec<SourceId> = (0..32).map(|i| SourceId(i * 3)).collect();
        let it = TermInterner::new(universe.iter().copied());
        for _ in 0..50 {
            let a = random_form(&mut rng, &universe, 10);
            let b = random_form(&mut rng, &universe, 10);
            let da = ColumnForm::from_canonical(&it, &a);
            let db = ColumnForm::from_canonical(&it, &b);
            assert_eq!(da.covariance(&db).to_bits(), a.covariance(&b).to_bits());
        }
    }

    #[test]
    fn batch_kernels_match_per_form_calls_bitwise() {
        let mut rng = SplitMix64::new(3);
        let universe: Vec<SourceId> = (0..25).map(SourceId).collect();
        let it = TermInterner::new(universe.iter().copied());
        let forms: Vec<CanonicalForm> = (0..20)
            .map(|_| random_form(&mut rng, &universe, 8))
            .collect();
        let probe = random_form(&mut rng, &universe, 8);

        let mut batch = FormBatch::new(&it);
        for f in &forms {
            batch.push(&it, f);
        }
        assert_eq!(batch.len(), forms.len());

        let mut vars = Vec::new();
        batch.variances_into(&mut vars);
        let mut covs = Vec::new();
        let dp = ColumnForm::from_canonical(&it, &probe);
        batch.covariances_with_into(&dp, &mut covs);
        for (i, f) in forms.iter().enumerate() {
            assert_eq!(batch.means()[i].to_bits(), f.mean().to_bits());
            assert_eq!(vars[i].to_bits(), f.variance().to_bits());
            assert_eq!(covs[i].to_bits(), f.covariance(&probe).to_bits());
        }

        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        batch.envelopes_into(1.5, &mut lo, &mut hi);
        for (i, f) in forms.iter().enumerate() {
            let sparse = f.envelope(1.5);
            let dense = ColumnForm::from_canonical(&it, f).envelope(1.5);
            assert_eq!(lo[i].to_bits(), sparse.0.to_bits());
            assert_eq!(hi[i].to_bits(), sparse.1.to_bits());
            assert_eq!(dense.0.to_bits(), sparse.0.to_bits());
            assert_eq!(dense.1.to_bits(), sparse.1.to_bits());
        }
    }

    #[test]
    fn arena_recycles_rows() {
        let it = TermInterner::new((0..8).map(SourceId));
        let mut arena = FormArena::new();
        let a = arena.take(&it);
        assert_eq!(a.columns(), &[0.0; 8]);
        arena.put(a);
        assert_eq!(arena.spare_count(), 1);
        let b = arena.take(&it);
        assert_eq!(arena.spare_count(), 0);
        assert_eq!(b.columns().len(), 8);
    }

    #[test]
    fn empty_width_batch_is_sound() {
        let it = TermInterner::new(std::iter::empty());
        let mut batch = FormBatch::new(&it);
        batch.push(&it, &CanonicalForm::constant(2.0));
        batch.push(&it, &CanonicalForm::constant(3.0));
        let mut vars = Vec::new();
        batch.variances_into(&mut vars);
        assert_eq!(vars, vec![0.0, 0.0]);
        let probe = ColumnForm::from_canonical(&it, &CanonicalForm::constant(1.0));
        let mut covs = Vec::new();
        batch.covariances_with_into(&probe, &mut covs);
        assert_eq!(covs, vec![0.0, 0.0]);
    }
}
