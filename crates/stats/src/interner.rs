//! Run-global term interning and lane-blocked batched kernels.
//!
//! The DP's sparse canonical forms pay a branchy sorted-merge per binary
//! operation. For workloads that evaluate moments over *whole solution
//! lists* — batched covariance, variance sweeps, envelope dominance,
//! representation cross-checks — a denser layout wins: a per-run
//! [`TermInterner`] maps every live [`SourceId`] to a dense column index,
//! so a form becomes a fixed-stride `f64` row ([`ColumnForm`]) and a list
//! of forms becomes a contiguous row-major matrix ([`FormBatch`]) whose
//! reductions are flat slice sweeps.
//!
//! # Lane-block layout
//!
//! [`FormBatch`] stores every row padded to a multiple of [`LANES`]
//! (8 × `f64`), tail slots zeroed. The batched kernels then walk rows as
//! `chunks_exact(LANES)` blocks and accumulate into [`LANES`] independent
//! partial sums — straight-line, branch-free inner loops with no
//! cross-iteration dependence per lane, the exact shape LLVM's
//! auto-vectorizer turns into packed SIMD without any unsafe code or
//! fast-math flags. Zero slots are *not* skipped: a padding or absent
//! source contributes an exact `+0.0` product, which cannot change any
//! lane's partial sum.
//!
//! # Determinism contracts
//!
//! Two distinct contracts coexist here, and the difference matters:
//!
//! * **[`ColumnForm`] (single rows): sparse parity.** Its `variance`/
//!   `covariance` replay exactly the sparse sorted-walk fold of
//!   [`CanonicalForm`] — zero slots skipped, same order, same empty-sum
//!   sign — so round-tripping a form through the dense representation is
//!   a bitwise identity on every moment (pinned by the `determinism`
//!   suite in `varbuf-core`).
//! * **[`FormBatch`] (lane kernels): fixed lane schedule.** A lane
//!   reduction sums lane `l ∈ 0..8` over blocks, then combines the
//!   eight partials by the fixed halving tree
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`. That order differs from
//!   the sparse sequential fold (floating-point addition does not
//!   reassociate), so batch results are **not** bit-equal to
//!   [`CanonicalForm`]'s — they are bit-equal to the *scalar reference
//!   kernels* [`lane_variance_ref`] / [`lane_dot_ref`] /
//!   [`lane_lin_comb_dot_ref`], which spell out the schedule in plain
//!   scalar code. Every optimized kernel is pinned against its reference
//!   across seeds by the `lane_kernels` property suite. Columns are
//!   still assigned in ascending [`SourceId`] order, so the *set* of
//!   products a kernel folds is exactly the sparse walk's.
//!
//! The DP engine itself never consumes lane-kernel moments — its pruning
//! and merging stay on the sparse forms — so the engine's own bitwise
//! oracles (`determinism`, `bounds_oracle`, `lishi_oracle`) are
//! unaffected by the schedule change.
//!
//! # Term-set interning
//!
//! Sibling solutions in a DP list overwhelmingly share term *sets* (the
//! same subtree sources, different coefficients): scattering each form
//! with a per-term binary search repeats identical id→column lookups.
//! [`ScatterPlanCache`] interns each distinct sorted id-set once and
//! caches its column-position plan, so every further form with the same
//! set scatters with a single hash probe and a flat indexed copy.
//!
//! # Arena lifetime
//!
//! Dense rows are recycled through a [`FormArena`]: `take` hands out a
//! zeroed row, `put` returns its buffer for reuse. The arena is per-run
//! scratch (one per worker, never shared), mirroring the `SolPool`
//! recycling discipline of the DP engine.

use crate::canonical::{CanonicalForm, SourceId};
use std::collections::HashMap;
use std::rc::Rc;

/// `f64` lanes per block: one AVX-512 register, two AVX2, four SSE2.
pub const LANES: usize = 8;

/// Folds the eight lane partials by the fixed halving tree
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the one reduction order
/// every lane kernel (optimized and reference alike) commits to.
#[inline]
#[must_use]
fn reduce_lanes(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Scalar reference for the lane variance kernel: `Σ aᵢ²` accumulated
/// lane-by-lane over [`LANES`]-wide blocks (remainder elements fold into
/// lanes `0..rem`), reduced by [`reduce_lanes`]'s fixed tree.
///
/// This function *defines* the batched variance result: the optimized
/// [`FormBatch::variances_into`] sweep is pinned bit-for-bit against it.
/// An all-zero (or empty) row yields `+0.0` — unlike the sparse fold's
/// `-0.0` empty sum, one of the documented schedule differences.
#[must_use]
pub fn lane_variance_ref(row: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = row.chunks_exact(LANES);
    let tail = chunks.remainder();
    for block in chunks {
        for l in 0..LANES {
            acc[l] += block[l] * block[l];
        }
    }
    for (l, &x) in tail.iter().enumerate() {
        acc[l] += x * x;
    }
    reduce_lanes(acc)
}

/// Scalar reference for the lane dot-product kernel:
/// `Σ aᵢ·bᵢ` with the same blocking, tail folding, and reduction tree as
/// [`lane_variance_ref`]. Zero slots are folded, not skipped — their
/// products are exact `±0.0` and leave every `+0.0`-seeded lane partial
/// unchanged.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn lane_dot_ref(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "lane dot operands must match in length");
    let mut acc = [0.0f64; LANES];
    let ca = a.chunks_exact(LANES);
    let tail_a = ca.remainder();
    let mut bs = b.chunks_exact(LANES);
    for block_a in ca {
        let block_b = bs.next().expect("equal lengths");
        for l in 0..LANES {
            acc[l] += block_a[l] * block_b[l];
        }
    }
    let tail_b = &b[b.len() - tail_a.len()..];
    for (l, (&x, &y)) in tail_a.iter().zip(tail_b).enumerate() {
        acc[l] += x * y;
    }
    reduce_lanes(acc)
}

/// Scalar reference for the fused lin-comb + covariance kernel: writes
/// `out[j] = k1·a[j] + k2·b[j]` and simultaneously folds
/// `Σ out[j]·probe[j]` with the lane schedule, in one logical pass — the
/// combined row never needs a second traversal to get its covariance.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[must_use]
pub fn lane_lin_comb_dot_ref(
    a: &[f64],
    k1: f64,
    b: &[f64],
    k2: f64,
    probe: &[f64],
    out: &mut [f64],
) -> f64 {
    assert_eq!(a.len(), b.len(), "lin-comb operands must match in length");
    assert_eq!(a.len(), probe.len(), "probe must match operand length");
    assert_eq!(a.len(), out.len(), "out must match operand length");
    let mut acc = [0.0f64; LANES];
    for (j, o) in out.iter_mut().enumerate() {
        let v = k1 * a[j] + k2 * b[j];
        *o = v;
        acc[j % LANES] += v * probe[j];
    }
    reduce_lanes(acc)
}

/// Scalar reference for the fused apply + variance kernel: writes
/// `dst[j] ← dst[j] + k·src[j]` and simultaneously folds `Σ dst[j]²`
/// of the *updated* row with the lane schedule — one logical pass where
/// the unfused pipeline would traverse the row twice. This is the dense
/// analogue of the lazy-wire materialization step
/// `rat ← rat − (Σrᵢ)·load` followed by a σ read: applying a deferred
/// affine transform to a whole solution list batches into exactly this
/// shape, one row per solution.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn lane_axpy_var_ref(dst: &mut [f64], src: &[f64], k: f64) -> f64 {
    assert_eq!(dst.len(), src.len(), "axpy operands must match in length");
    let mut acc = [0.0f64; LANES];
    for (j, d) in dst.iter_mut().enumerate() {
        let v = *d + k * src[j];
        *d = v;
        acc[j % LANES] += v * v;
    }
    reduce_lanes(acc)
}

/// A run-global map from sparse [`SourceId`]s to dense column indices.
///
/// Built once per optimization run from the enumerable universe of
/// sources a net can touch. Columns are assigned in ascending id order
/// (see the module docs for why that matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermInterner {
    /// Column → id, strictly ascending.
    ids: Vec<SourceId>,
}

impl TermInterner {
    /// Builds an interner from an arbitrary iterator of source ids
    /// (sorted and deduplicated internally).
    #[must_use]
    pub fn new(sources: impl IntoIterator<Item = SourceId>) -> Self {
        let mut ids: Vec<SourceId> = sources.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Builds an interner from ids that are already strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the input is not strictly ascending.
    #[must_use]
    pub fn from_sorted(ids: Vec<SourceId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "interner ids must be strictly ascending"
        );
        Self { ids }
    }

    /// Number of interned columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the interner is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The dense column of `id`, or `None` if it was never interned.
    #[must_use]
    pub fn column(&self, id: SourceId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The source id stored at `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.len()`.
    #[must_use]
    pub fn id(&self, col: usize) -> SourceId {
        self.ids[col]
    }

    /// The interned ids in column (ascending) order.
    #[must_use]
    pub fn ids(&self) -> &[SourceId] {
        &self.ids
    }
}

/// Interns distinct sorted term *sets* and caches their column-position
/// scatter plans (see the module docs: sibling solutions share sets far
/// more often than they share coefficients).
///
/// One cache per batch-building site — like the arena, per-run scratch.
#[derive(Debug, Default)]
pub struct ScatterPlanCache {
    plans: HashMap<Box<[SourceId]>, Rc<[u32]>>,
    hits: usize,
    misses: usize,
}

impl ScatterPlanCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The column-position plan for `ids` under `interner`: `plan[t]` is
    /// the dense column of `ids[t]`. Computed (with one binary search
    /// per term) only the first time a given id-set is seen; every
    /// further form sharing the set gets the cached plan from a single
    /// hash probe.
    ///
    /// # Panics
    ///
    /// Panics if any id is outside the interner.
    #[must_use]
    pub fn plan(&mut self, interner: &TermInterner, ids: &[SourceId]) -> Rc<[u32]> {
        if let Some(plan) = self.plans.get(ids) {
            self.hits += 1;
            return Rc::clone(plan);
        }
        self.misses += 1;
        let plan: Rc<[u32]> = ids
            .iter()
            .map(|&id| {
                interner
                    .column(id)
                    .expect("form references a source outside the interner") as u32
            })
            .collect();
        self.plans.insert(ids.into(), Rc::clone(&plan));
        plan
    }

    /// Number of distinct id-sets interned so far.
    #[must_use]
    pub fn distinct_sets(&self) -> usize {
        self.plans.len()
    }

    /// Number of `plan` calls answered from the cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of `plan` calls that had to intern a new id-set (equals
    /// [`distinct_sets`](Self::distinct_sets) — kept as a counter so
    /// hit-rate math never touches the map).
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Total `plan` calls (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// A canonical form in dense column representation: `nominal` plus one
/// coefficient slot per interned column (0.0 = source absent).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnForm {
    nominal: f64,
    cols: Vec<f64>,
}

impl ColumnForm {
    /// Scatters a sparse form into dense columns.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source the interner doesn't know.
    #[must_use]
    pub fn from_canonical(interner: &TermInterner, form: &CanonicalForm) -> Self {
        let mut out = Self {
            nominal: form.mean(),
            cols: vec![0.0; interner.len()],
        };
        out.scatter(interner, form);
        out
    }

    /// Re-scatters `form` into this row, reusing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source the interner doesn't know.
    pub fn scatter(&mut self, interner: &TermInterner, form: &CanonicalForm) {
        self.cols.clear();
        self.cols.resize(interner.len(), 0.0);
        self.nominal = form.mean();
        for (id, a) in form.terms() {
            let col = interner
                .column(id)
                .expect("form references a source outside the interner");
            self.cols[col] = a;
        }
    }

    /// Gathers the row back into a sparse canonical form.
    ///
    /// Bitwise identical to the original: nonzero columns are emitted in
    /// column order, which is ascending id order.
    #[must_use]
    pub fn to_canonical(&self, interner: &TermInterner) -> CanonicalForm {
        let terms: Vec<(SourceId, f64)> = self
            .cols
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0.0)
            .map(|(col, &c)| (interner.id(col), c))
            .collect();
        CanonicalForm::with_terms(self.nominal, terms)
    }

    /// The nominal (mean) value.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.nominal
    }

    /// Variance `Σ aᵢ²` over the dense row — **sparse parity**: zero
    /// slots are skipped, so the fold sees exactly the sparse term
    /// sequence and matches [`CanonicalForm::variance`] bitwise.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.cols
            .iter()
            .filter(|&&a| a != 0.0)
            .map(|&a| a * a)
            .sum()
    }

    /// Covariance against another row of the same width — **sparse
    /// parity**: only slots nonzero in *both* rows (the shared sources)
    /// contribute, folded from `0.0` exactly like the sparse walk in
    /// [`CanonicalForm::covariance`].
    ///
    /// # Panics
    ///
    /// Panics if the rows come from different-width interners.
    #[must_use]
    pub fn covariance(&self, other: &Self) -> f64 {
        assert_eq!(self.cols.len(), other.cols.len(), "interner width mismatch");
        let mut cov = 0.0;
        for (&x, &y) in self.cols.iter().zip(&other.cols) {
            if x != 0.0 && y != 0.0 {
                cov += x * y;
            }
        }
        cov
    }

    /// The dense coefficient row.
    #[must_use]
    pub fn columns(&self) -> &[f64] {
        &self.cols
    }

    /// The `±k·σ` envelope `(mean − k·σ, mean + k·σ)` of this row —
    /// matches [`CanonicalForm::envelope`] bitwise (sparse-parity
    /// variance).
    #[must_use]
    pub fn envelope(&self, k: f64) -> (f64, f64) {
        let spread = k * self.variance().sqrt();
        (self.nominal - spread, self.nominal + spread)
    }
}

/// Recycles [`ColumnForm`] buffers, the dense analogue of the DP's
/// solution pool. Per-run scratch — never shared between workers.
#[derive(Debug, Default)]
pub struct FormArena {
    spare: Vec<Vec<f64>>,
}

impl FormArena {
    /// Spare rows to retain; beyond this, returned rows really are freed.
    const KEEP: usize = 32;

    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed row sized to `interner`, reusing a spare buffer if one
    /// is available.
    #[must_use]
    pub fn take(&mut self, interner: &TermInterner) -> ColumnForm {
        let mut cols = self.spare.pop().unwrap_or_default();
        cols.clear();
        cols.resize(interner.len(), 0.0);
        ColumnForm { nominal: 0.0, cols }
    }

    /// Returns a row's buffer to the arena.
    pub fn put(&mut self, form: ColumnForm) {
        if self.spare.len() < Self::KEEP && form.cols.capacity() > 0 {
            self.spare.push(form.cols);
        }
    }

    /// Number of spare buffers currently held.
    #[must_use]
    pub fn spare_count(&self) -> usize {
        self.spare.len()
    }
}

/// A solution list's forms in lane-blocked SoA layout: nominals
/// contiguous, coefficient rows contiguous row-major with each row
/// padded to a [`LANES`] multiple (zero tail), so every batched kernel
/// walks whole `chunks_exact(LANES)` blocks with no remainder branch.
#[derive(Debug, Clone, Default)]
pub struct FormBatch {
    /// Logical row width (interner columns).
    width: usize,
    /// Physical row stride: `width` rounded up to a [`LANES`] multiple.
    stride: usize,
    nominals: Vec<f64>,
    rows: Vec<f64>,
}

impl FormBatch {
    /// An empty batch over `interner`'s column space.
    #[must_use]
    pub fn new(interner: &TermInterner) -> Self {
        let width = interner.len();
        Self {
            width,
            stride: width.div_ceil(LANES) * LANES,
            nominals: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Clears the batch, retaining capacity, and rebinds it to
    /// `interner`'s width.
    pub fn reset(&mut self, interner: &TermInterner) {
        self.width = interner.len();
        self.stride = self.width.div_ceil(LANES) * LANES;
        self.nominals.clear();
        self.rows.clear();
    }

    /// Appends one sparse form as a dense row (zero-padded to the lane
    /// stride), locating each term's column by binary search.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source outside the interner.
    pub fn push(&mut self, interner: &TermInterner, form: &CanonicalForm) {
        assert_eq!(interner.len(), self.width, "interner width mismatch");
        self.nominals.push(form.mean());
        let start = self.rows.len();
        self.rows.resize(start + self.stride, 0.0);
        let row = &mut self.rows[start..];
        for (id, a) in form.terms() {
            let col = interner
                .column(id)
                .expect("form references a source outside the interner");
            row[col] = a;
        }
    }

    /// [`push`](Self::push) through a [`ScatterPlanCache`]: the form's
    /// id-set is interned once and its column plan reused, so sibling
    /// forms sharing a term set scatter without any per-term search.
    /// Produces bit-identical rows to `push`.
    ///
    /// # Panics
    ///
    /// Panics if the form references a source outside the interner.
    pub fn push_interned(
        &mut self,
        interner: &TermInterner,
        cache: &mut ScatterPlanCache,
        form: &CanonicalForm,
    ) {
        assert_eq!(interner.len(), self.width, "interner width mismatch");
        let plan = cache.plan(interner, form.term_ids());
        self.nominals.push(form.mean());
        let start = self.rows.len();
        self.rows.resize(start + self.stride, 0.0);
        let row = &mut self.rows[start..];
        for (&col, &a) in plan.iter().zip(form.term_coeffs()) {
            row[col as usize] = a;
        }
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nominals.len()
    }

    /// Whether the batch has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nominals.is_empty()
    }

    /// The contiguous nominal values.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.nominals
    }

    /// One logical row (padding slots excluded).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.stride..i * self.stride + self.width]
    }

    /// One physical row including its zeroed lane padding.
    fn row_padded(&self, i: usize) -> &[f64] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    /// Batched lane variance: `out[i] = Σⱼ row[i][j]²` for every row,
    /// one branch-free blocked pass over the matrix. Bitwise identical
    /// to [`lane_variance_ref`] per row (padding zeros contribute exact
    /// `+0.0` to the same lanes the reference's tail fold uses).
    pub fn variances_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.len()).map(|i| {
            let mut acc = [0.0f64; LANES];
            for block in self.row_padded(i).chunks_exact(LANES) {
                for l in 0..LANES {
                    acc[l] += block[l] * block[l];
                }
            }
            reduce_lanes(acc)
        }));
    }

    /// Batched lane covariance against a probe row:
    /// `out[i] = Σⱼ row[i][j]·probe[j]`, one branch-free blocked pass.
    /// Bitwise identical to [`lane_dot_ref`] of each logical row against
    /// `probe.columns()`.
    ///
    /// # Panics
    ///
    /// Panics if `probe`'s width differs from the batch's.
    pub fn covariances_with_into(&self, probe: &ColumnForm, out: &mut Vec<f64>) {
        assert_eq!(probe.cols.len(), self.width, "interner width mismatch");
        out.clear();
        let full = self.width / LANES * LANES;
        out.extend((0..self.len()).map(|i| {
            let row = self.row_padded(i);
            let mut acc = [0.0f64; LANES];
            let mut pb = probe.cols.chunks_exact(LANES);
            for block in row[..full].chunks_exact(LANES) {
                let p = pb.next().expect("probe width checked");
                for l in 0..LANES {
                    acc[l] += block[l] * p[l];
                }
            }
            for (l, (&x, &y)) in row[full..self.width]
                .iter()
                .zip(&probe.cols[full..])
                .enumerate()
            {
                acc[l] += x * y;
            }
            reduce_lanes(acc)
        }));
    }

    /// Fused lin-comb + covariance: appends the combined row
    /// `k1·row[i] + k2·row[j]` to the batch (its nominal is
    /// `k1·mean[i] + k2·mean[j]`) and returns its lane covariance
    /// against the existing row `probe` — one pass produces both the
    /// row and the moment, where the unfused pipeline would traverse
    /// the fresh row twice. Bitwise identical to
    /// [`lane_lin_comb_dot_ref`] over the padded rows.
    ///
    /// # Panics
    ///
    /// Panics if `i`, `j`, or `probe` are out of range.
    pub fn lin_comb_cov_push(&mut self, i: usize, k1: f64, j: usize, k2: f64, probe: usize) -> f64 {
        assert!(
            i < self.len() && j < self.len() && probe < self.len(),
            "row out of range"
        );
        self.nominals
            .push(k1 * self.nominals[i] + k2 * self.nominals[j]);
        let start = self.rows.len();
        self.rows.resize(start + self.stride, 0.0);
        let (head, out) = self.rows.split_at_mut(start);
        let a = &head[i * self.stride..i * self.stride + self.stride];
        let b = &head[j * self.stride..j * self.stride + self.stride];
        let p = &head[probe * self.stride..probe * self.stride + self.stride];
        let mut acc = [0.0f64; LANES];
        for (blk, ((oa, ob), op)) in out.chunks_exact_mut(LANES).zip(
            a.chunks_exact(LANES)
                .zip(b.chunks_exact(LANES))
                .zip(p.chunks_exact(LANES)),
        ) {
            for l in 0..LANES {
                let v = k1 * oa[l] + k2 * ob[l];
                blk[l] = v;
                acc[l] += v * op[l];
            }
        }
        reduce_lanes(acc)
    }

    /// Fused apply + variance: updates row `dst`'s coefficients in place
    /// to `row[dst] + k·row[src]` and returns the lane variance of the
    /// updated row from the same pass. The nominal is deliberately left
    /// untouched, mirroring `CanonicalForm::add_scaled_terms_assign`:
    /// this is the batch form of the lazy-wire materialization
    /// `rat ← rat − p·load` (terms only — the mean was folded eagerly at
    /// deferral time), and one call per solution applies the deferred
    /// transform *and* yields the σ² the very next consumer (envelope
    /// test, winner key) would otherwise pay a second traversal for.
    /// Bitwise identical to [`lane_axpy_var_ref`] over the padded rows.
    ///
    /// # Panics
    ///
    /// Panics if `dst` or `src` is out of range, or if `dst == src`.
    pub fn apply_scaled_var(&mut self, dst: usize, src: usize, k: f64) -> f64 {
        assert!(dst < self.len() && src < self.len(), "row out of range");
        assert_ne!(dst, src, "in-place apply needs distinct rows");
        let (a, b) = (dst.min(src), dst.max(src));
        let (head, rest) = self.rows.split_at_mut(b * self.stride);
        let low = &mut head[a * self.stride..a * self.stride + self.stride];
        let high = &mut rest[..self.stride];
        let (d, s): (&mut [f64], &[f64]) = if dst < src { (low, high) } else { (high, low) };
        let mut acc = [0.0f64; LANES];
        for (blk_d, blk_s) in d.chunks_exact_mut(LANES).zip(s.chunks_exact(LANES)) {
            for l in 0..LANES {
                let v = blk_d[l] + k * blk_s[l];
                blk_d[l] = v;
                acc[l] += v * v;
            }
        }
        reduce_lanes(acc)
    }

    /// Batched `±k·σ` envelopes: `lo[i] = mean[i] − k·σ[i]`,
    /// `hi[i] = mean[i] + k·σ[i]`, fused with the lane variance sweep.
    /// The spread arithmetic matches [`ColumnForm::envelope`]'s
    /// expression with the lane variance in place of the sparse one.
    pub fn envelopes_into(&self, k: f64, lo: &mut Vec<f64>, hi: &mut Vec<f64>) {
        lo.clear();
        hi.clear();
        for i in 0..self.len() {
            let mut acc = [0.0f64; LANES];
            for block in self.row_padded(i).chunks_exact(LANES) {
                for l in 0..LANES {
                    acc[l] += block[l] * block[l];
                }
            }
            let spread = k * reduce_lanes(acc).sqrt();
            lo.push(self.nominals[i] - spread);
            hi.push(self.nominals[i] + spread);
        }
    }

    /// Batched envelope-dominance sweep: `flags[i]` is set when some
    /// *other* row's pessimistic `k·σ` bound still beats row `i`'s
    /// optimistic one — `max_{j≠i} lo[j] > hi[i]` (strict, so a row
    /// never dominates itself through a zero-width envelope). One
    /// envelope pass plus one max scan: `O(n·width/LANES + n)`, no
    /// pairwise loop.
    pub fn envelope_dominated_into(&self, k: f64, flags: &mut Vec<bool>) {
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        self.envelopes_into(k, &mut lo, &mut hi);
        // Best and runner-up pessimistic bounds, so row `argmax` tests
        // against the second best instead of itself.
        let (mut best, mut second, mut arg) = (f64::NEG_INFINITY, f64::NEG_INFINITY, usize::MAX);
        for (j, &l) in lo.iter().enumerate() {
            if l > best {
                second = best;
                best = l;
                arg = j;
            } else if l > second {
                second = l;
            }
        }
        flags.clear();
        flags.extend(
            hi.iter()
                .enumerate()
                .map(|(i, &h)| (if i == arg { second } else { best }) > h),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_form(rng: &mut SplitMix64, universe: &[SourceId], max_terms: usize) -> CanonicalForm {
        let n = (rng.next_u64() as usize) % (max_terms + 1);
        let mut terms = Vec::with_capacity(n);
        for _ in 0..n {
            let id = universe[(rng.next_u64() as usize) % universe.len()];
            let coeff = rng.next_f64() * 4.0 - 2.0;
            terms.push((id, coeff));
        }
        CanonicalForm::with_terms(rng.next_f64() * 10.0 - 5.0, terms)
    }

    #[test]
    fn interner_assigns_ascending_columns() {
        let it = TermInterner::new([SourceId(9), SourceId(2), SourceId(5), SourceId(2)]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.ids(), &[SourceId(2), SourceId(5), SourceId(9)]);
        assert_eq!(it.column(SourceId(5)), Some(1));
        assert_eq!(it.column(SourceId(7)), None);
        assert_eq!(it.id(2), SourceId(9));
    }

    #[test]
    fn column_roundtrip_is_bitwise_identity() {
        let mut rng = SplitMix64::new(42);
        let universe: Vec<SourceId> = (0..40).map(SourceId).collect();
        let it = TermInterner::new(universe.iter().copied());
        for _ in 0..50 {
            let f = random_form(&mut rng, &universe, 12);
            let dense = ColumnForm::from_canonical(&it, &f);
            let back = dense.to_canonical(&it);
            assert_eq!(back, f);
            assert_eq!(dense.mean().to_bits(), f.mean().to_bits());
            assert_eq!(dense.variance().to_bits(), f.variance().to_bits());
        }
    }

    #[test]
    fn dense_covariance_matches_sparse_bitwise() {
        let mut rng = SplitMix64::new(7);
        let universe: Vec<SourceId> = (0..32).map(|i| SourceId(i * 3)).collect();
        let it = TermInterner::new(universe.iter().copied());
        for _ in 0..50 {
            let a = random_form(&mut rng, &universe, 10);
            let b = random_form(&mut rng, &universe, 10);
            let da = ColumnForm::from_canonical(&it, &a);
            let db = ColumnForm::from_canonical(&it, &b);
            assert_eq!(da.covariance(&db).to_bits(), a.covariance(&b).to_bits());
        }
    }

    #[test]
    fn batch_kernels_match_lane_references_bitwise() {
        // Widths straddling the lane boundary: 7 (pure tail), 8 (exact),
        // 25 (blocks + tail) — the padding must be invisible.
        for &width in &[7u32, 8, 25, 48] {
            let mut rng = SplitMix64::new(u64::from(width) + 3);
            let universe: Vec<SourceId> = (0..width).map(SourceId).collect();
            let it = TermInterner::new(universe.iter().copied());
            let forms: Vec<CanonicalForm> = (0..20)
                .map(|_| random_form(&mut rng, &universe, width as usize / 2 + 1))
                .collect();
            let probe = random_form(&mut rng, &universe, width as usize / 2 + 1);

            let mut batch = FormBatch::new(&it);
            for f in &forms {
                batch.push(&it, f);
            }
            assert_eq!(batch.len(), forms.len());

            let mut vars = Vec::new();
            batch.variances_into(&mut vars);
            let mut covs = Vec::new();
            let dp = ColumnForm::from_canonical(&it, &probe);
            batch.covariances_with_into(&dp, &mut covs);
            for (i, f) in forms.iter().enumerate() {
                assert_eq!(batch.means()[i].to_bits(), f.mean().to_bits());
                assert_eq!(vars[i].to_bits(), lane_variance_ref(batch.row(i)).to_bits());
                assert_eq!(
                    covs[i].to_bits(),
                    lane_dot_ref(batch.row(i), dp.columns()).to_bits()
                );
            }

            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            batch.envelopes_into(1.5, &mut lo, &mut hi);
            for i in 0..forms.len() {
                let spread = 1.5 * lane_variance_ref(batch.row(i)).sqrt();
                assert_eq!(lo[i].to_bits(), (batch.means()[i] - spread).to_bits());
                assert_eq!(hi[i].to_bits(), (batch.means()[i] + spread).to_bits());
            }
        }
    }

    #[test]
    fn fused_lin_comb_cov_matches_reference() {
        let mut rng = SplitMix64::new(99);
        let universe: Vec<SourceId> = (0..21).map(SourceId).collect();
        let it = TermInterner::new(universe.iter().copied());
        let mut batch = FormBatch::new(&it);
        for _ in 0..4 {
            batch.push(&it, &random_form(&mut rng, &universe, 12));
        }
        let (a, b, p) = (0, 1, 2);
        let stride = batch.row_padded(0).len();
        let mut out_ref = vec![0.0; stride];
        let want = lane_lin_comb_dot_ref(
            batch.row_padded(a),
            0.75,
            batch.row_padded(b),
            -1.25,
            batch.row_padded(p),
            &mut out_ref,
        );
        let got = batch.lin_comb_cov_push(a, 0.75, b, -1.25, p);
        assert_eq!(got.to_bits(), want.to_bits());
        let new = batch.len() - 1;
        for (x, y) in batch.row_padded(new).iter().zip(&out_ref) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            batch.means()[new].to_bits(),
            (0.75 * batch.means()[a] + -1.25 * batch.means()[b]).to_bits()
        );
    }

    #[test]
    fn fused_apply_scaled_var_matches_reference() {
        // Widths straddling the lane boundary, both apply directions
        // (dst before and after src in the matrix).
        for &width in &[7u32, 8, 25] {
            let mut rng = SplitMix64::new(u64::from(width) * 31 + 5);
            let universe: Vec<SourceId> = (0..width).map(SourceId).collect();
            let it = TermInterner::new(universe.iter().copied());
            for &(dst, src) in &[(0usize, 1usize), (2, 0)] {
                let mut batch = FormBatch::new(&it);
                for _ in 0..3 {
                    batch.push(
                        &it,
                        &random_form(&mut rng, &universe, width as usize / 2 + 1),
                    );
                }
                let k = -(rng.next_f64() * 2.0 + 0.1);
                let mut want_row = batch.row_padded(dst).to_vec();
                let src_row = batch.row_padded(src).to_vec();
                let want_var = lane_axpy_var_ref(&mut want_row, &src_row, k);
                let mean_before = batch.means()[dst];
                let got_var = batch.apply_scaled_var(dst, src, k);
                assert_eq!(got_var.to_bits(), want_var.to_bits());
                assert_eq!(
                    batch.means()[dst].to_bits(),
                    mean_before.to_bits(),
                    "apply is terms-only: the nominal must not move"
                );
                for (x, y) in batch.row_padded(dst).iter().zip(&want_row) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                // src is untouched.
                for (x, y) in batch.row_padded(src).iter().zip(&src_row) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn scatter_plan_cache_dedups_sibling_term_sets() {
        let universe: Vec<SourceId> = (0..16).map(SourceId).collect();
        let it = TermInterner::new(universe.iter().copied());
        let mut cache = ScatterPlanCache::new();
        // Five "siblings": same term set, different coefficients.
        let siblings: Vec<CanonicalForm> = (0..5)
            .map(|k| {
                CanonicalForm::with_terms(
                    f64::from(k),
                    [1u32, 4, 9, 13]
                        .iter()
                        .map(|&i| (SourceId(i), 0.5 + f64::from(k) * 0.1))
                        .collect(),
                )
            })
            .collect();
        let mut plain = FormBatch::new(&it);
        let mut interned = FormBatch::new(&it);
        for f in &siblings {
            plain.push(&it, f);
            interned.push_interned(&it, &mut cache, f);
        }
        assert_eq!(cache.distinct_sets(), 1, "one shared set interned once");
        assert_eq!(cache.hits(), 4, "four forms reused the plan");
        for i in 0..siblings.len() {
            assert_eq!(plain.means()[i].to_bits(), interned.means()[i].to_bits());
            for (x, y) in plain.row(i).iter().zip(interned.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn envelope_dominance_flags_strictly_beaten_rows() {
        let it = TermInterner::new((0..4).map(SourceId));
        let mut batch = FormBatch::new(&it);
        // Row 0: mean 10, no spread. Row 1: mean 3, no spread (beaten).
        // Row 2: mean 9.9, wide spread (not beaten at k=1).
        batch.push(&it, &CanonicalForm::constant(10.0));
        batch.push(&it, &CanonicalForm::constant(3.0));
        batch.push(
            &it,
            &CanonicalForm::with_terms(9.9, vec![(SourceId(1), 2.0)]),
        );
        let mut flags = Vec::new();
        batch.envelope_dominated_into(1.0, &mut flags);
        assert_eq!(flags, vec![false, true, false]);
        // A solitary row is never dominated (no other row exists).
        let mut lone = FormBatch::new(&it);
        lone.push(&it, &CanonicalForm::constant(0.0));
        lone.envelope_dominated_into(1.0, &mut flags);
        assert_eq!(flags, vec![false]);
    }

    #[test]
    fn arena_recycles_rows() {
        let it = TermInterner::new((0..8).map(SourceId));
        let mut arena = FormArena::new();
        let a = arena.take(&it);
        assert_eq!(a.columns(), &[0.0; 8]);
        arena.put(a);
        assert_eq!(arena.spare_count(), 1);
        let b = arena.take(&it);
        assert_eq!(arena.spare_count(), 0);
        assert_eq!(b.columns().len(), 8);
    }

    #[test]
    fn empty_width_batch_is_sound() {
        let it = TermInterner::new(std::iter::empty());
        let mut batch = FormBatch::new(&it);
        batch.push(&it, &CanonicalForm::constant(2.0));
        batch.push(&it, &CanonicalForm::constant(3.0));
        let mut vars = Vec::new();
        batch.variances_into(&mut vars);
        assert_eq!(vars, vec![0.0, 0.0]);
        let probe = ColumnForm::from_canonical(&it, &CanonicalForm::constant(1.0));
        let mut covs = Vec::new();
        batch.covariances_with_into(&probe, &mut covs);
        assert_eq!(covs, vec![0.0, 0.0]);
    }
}
