//! Monte Carlo support: sampling the underlying variation sources and
//! evaluating canonical forms on those samples.
//!
//! The paper validates its first-order model against Monte Carlo simulation
//! twice (Figure 3 for device characteristics, Figure 6 for the root RAT);
//! this module provides the sampling machinery both use. A
//! [`SampleVector`] is one realization of every `N(0,1)` source; the
//! deterministic evaluators in `varbuf-core` can then recompute any
//! quantity exactly for that realization.

use crate::canonical::{CanonicalForm, SourceId};
use crate::rng::SplitMix64;
use std::collections::HashMap;

/// One realization of the variation-source vector.
///
/// Sources not present in the map sample to `0.0` (their mean), which is
/// the correct behavior for sources a particular net never touches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleVector {
    values: HashMap<u32, f64>,
}

impl SampleVector {
    /// Creates an empty sample (every source at its mean).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the realization of one source.
    pub fn set(&mut self, id: SourceId, value: f64) {
        self.values.insert(id.0, value);
    }

    /// The realization of one source (`0.0` if never sampled).
    #[must_use]
    pub fn get(&self, id: SourceId) -> f64 {
        self.values.get(&id.0).copied().unwrap_or(0.0)
    }

    /// Evaluates a canonical form at this sample point.
    #[must_use]
    pub fn eval(&self, form: &CanonicalForm) -> f64 {
        form.mean() + form.terms().map(|(id, a)| a * self.get(id)).sum::<f64>()
    }

    /// Number of explicitly sampled sources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no source has been sampled explicitly.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Seeded Monte Carlo driver over a fixed set of source ids.
///
/// ```
/// use varbuf_stats::canonical::{CanonicalForm, SourceId};
/// use varbuf_stats::mc::MonteCarlo;
///
/// let form = CanonicalForm::with_terms(10.0, vec![(SourceId(0), 2.0)]);
/// let mut mc = MonteCarlo::new(42, vec![SourceId(0)]);
/// let samples: Vec<f64> = (0..4000).map(|_| mc.draw().eval(&form)).collect();
/// let mean = samples.iter().sum::<f64>() / samples.len() as f64;
/// assert!((mean - 10.0).abs() < 0.2);
/// ```
#[derive(Debug)]
pub struct MonteCarlo {
    rng: SplitMix64,
    sources: Vec<SourceId>,
}

impl MonteCarlo {
    /// Creates a driver that samples exactly `sources` each draw,
    /// reproducibly from `seed`.
    #[must_use]
    pub fn new(seed: u64, sources: Vec<SourceId>) -> Self {
        Self {
            rng: SplitMix64::new(seed),
            sources,
        }
    }

    /// The set of sources sampled on each draw.
    #[must_use]
    pub fn sources(&self) -> &[SourceId] {
        &self.sources
    }

    /// Draws one realization of all sources.
    pub fn draw(&mut self) -> SampleVector {
        let mut sample = SampleVector::new();
        for &id in &self.sources {
            sample.set(id, StandardNormal.sample(&mut self.rng));
        }
        sample
    }

    /// Draws `n` realizations and evaluates `form` on each.
    pub fn eval_many(&mut self, form: &CanonicalForm, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.draw().eval(form)).collect()
    }
}

/// A standard normal sampler over the in-tree [`SplitMix64`] generator —
/// a thin facade kept so call sites read like a distribution draw.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl StandardNormal {
    /// One standard normal draw.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        rng.normal()
    }
}

/// Empirical mean and (unbiased) variance of a sample.
///
/// Returns `(0.0, 0.0)` for an empty slice and variance `0.0` for a single
/// observation.
///
/// Uses Welford's one-pass update: the running mean absorbs each sample's
/// deviation from the *current* mean, so a large common offset never
/// inflates the squared-deviation accumulator. A naive `Σx/n` mean loses
/// the low bits of samples like `1e9 ± 1e-3`, and the (mean-sized)
/// rounding error then dominates the true σ when squared.
#[must_use]
pub fn sample_moments(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i as f64 + 1.0);
        m2 += delta * (x - mean);
    }
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    (mean, m2 / (xs.len() as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_vector_defaults_to_mean() {
        let s = SampleVector::new();
        assert!(s.is_empty());
        let f = CanonicalForm::with_terms(7.0, vec![(SourceId(3), 100.0)]);
        assert_eq!(s.eval(&f), 7.0);
    }

    #[test]
    fn eval_uses_set_values() {
        let mut s = SampleVector::new();
        s.set(SourceId(0), 2.0);
        s.set(SourceId(1), -1.0);
        assert_eq!(s.len(), 2);
        let f = CanonicalForm::with_terms(1.0, vec![(SourceId(0), 3.0), (SourceId(1), 4.0)]);
        assert_eq!(s.eval(&f), 1.0 + 6.0 - 4.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SplitMix64::new(7);
        let normal = StandardNormal;
        let xs: Vec<f64> = (0..20_000).map(|_| normal.sample(&mut rng)).collect();
        let (mean, var) = sample_moments(&xs);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mc_matches_canonical_moments() {
        let form = CanonicalForm::with_terms(
            -5.0,
            vec![(SourceId(0), 1.5), (SourceId(1), 2.0), (SourceId(2), 0.5)],
        );
        let mut mc = MonteCarlo::new(123, vec![SourceId(0), SourceId(1), SourceId(2)]);
        let xs = mc.eval_many(&form, 20_000);
        let (mean, var) = sample_moments(&xs);
        assert!((mean - form.mean()).abs() < 0.05);
        assert!((var - form.variance()).abs() / form.variance() < 0.05);
    }

    #[test]
    fn mc_is_reproducible() {
        let mut a = MonteCarlo::new(9, vec![SourceId(0)]);
        let mut b = MonteCarlo::new(9, vec![SourceId(0)]);
        assert_eq!(a.draw(), b.draw());
        assert_eq!(a.draw(), b.draw());
    }

    #[test]
    fn moments_edge_cases() {
        assert_eq!(sample_moments(&[]), (0.0, 0.0));
        assert_eq!(sample_moments(&[3.0]), (3.0, 0.0));
        let (m, v) = sample_moments(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(v, 2.0);
    }

    /// Samples at `1e9 ± 1e-3`: `Σx² ≈ 2e22` has an ulp of ~4096, so the
    /// textbook accumulator `(Σx² − n·mean²)/(n−1)` cancels catastrophically
    /// — the true sum of squared deviations (~2e-2) sits entirely below the
    /// rounding grain of `Σx²`. Welford keeps every deviation relative to
    /// the running mean and must stay within a few percent of σ².
    #[test]
    fn moments_survive_large_offset() {
        let offset = 1.0e9;
        let sigma = 1.0e-3;
        let mut rng = SplitMix64::new(0xBADC_0FFE);
        let normal = StandardNormal;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| offset + sigma * normal.sample(&mut rng))
            .collect();

        // The naive sum-of-squares accumulator, kept inline as the
        // counter-example this test exists to rule out.
        let naive = |xs: &[f64]| -> (f64, f64) {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = (xs.iter().map(|x| x * x).sum::<f64>() - n * mean * mean) / (n - 1.0);
            (mean, var)
        };

        let true_var = sigma * sigma;
        let (_, naive_var) = naive(&xs);
        // Catastrophically wrong means a ≥100% relative error — or NaN,
        // when the cancelled sum of squares goes negative.
        let naive_rel_err = (naive_var - true_var).abs() / true_var;
        assert!(
            naive_rel_err.is_nan() || naive_rel_err >= 1.0,
            "naive variance {naive_var} unexpectedly accurate — the test \
             no longer exercises cancellation"
        );

        let (mean, var) = sample_moments(&xs);
        assert!((mean - offset).abs() < 1.0e-4, "mean {mean}");
        assert!(
            (var - true_var).abs() / true_var < 0.05,
            "welford variance {var} vs true {true_var}"
        );
    }
}
