//! Kolmogorov–Smirnov goodness-of-fit machinery.
//!
//! The paper validates its first-order model against Monte Carlo visually
//! (Figures 3 and 6); this module provides the quantitative version: the
//! one-sample KS statistic of an empirical sample against a reference
//! CDF, with the asymptotic critical value for a significance level.

/// The one-sample Kolmogorov–Smirnov statistic
/// `D_n = sup_x |F_n(x) − F(x)|` of `samples` against the reference CDF.
///
/// Returns `0.0` for an empty sample.
///
/// ```
/// use varbuf_stats::gaussian::norm_cdf;
/// use varbuf_stats::ks::ks_statistic;
/// // A perfectly spaced normal sample has a tiny KS distance.
/// let xs: Vec<f64> = (1..100).map(|i| {
///     varbuf_stats::gaussian::norm_quantile(i as f64 / 100.0)
/// }).collect();
/// assert!(ks_statistic(&xs, norm_cdf) < 0.02);
/// ```
#[must_use]
pub fn ks_statistic(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// The asymptotic critical value of the KS statistic at significance
/// `alpha` for `n` samples: `c(α)/√n` with
/// `c(α) = √(−½·ln(α/2))`.
///
/// A sample is consistent with the reference distribution at level `α`
/// when its [`ks_statistic`] is below this value.
///
/// # Panics
///
/// Panics unless `0 < alpha < 1` and `n > 0`.
#[must_use]
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let c = (-0.5 * (alpha / 2.0).ln()).sqrt();
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::norm_cdf;
    use crate::mc::StandardNormal;
    use crate::rng::SplitMix64;

    #[test]
    fn normal_sample_passes_against_normal_cdf() {
        let mut rng = SplitMix64::new(3);
        let normal = StandardNormal;
        let xs: Vec<f64> = (0..5000).map(|_| normal.sample(&mut rng)).collect();
        let d = ks_statistic(&xs, norm_cdf);
        assert!(
            d < ks_critical(xs.len(), 0.01),
            "KS {d} exceeds critical {}",
            ks_critical(xs.len(), 0.01)
        );
    }

    #[test]
    fn shifted_sample_fails() {
        let mut rng = SplitMix64::new(3);
        let normal = StandardNormal;
        let xs: Vec<f64> = (0..5000).map(|_| normal.sample(&mut rng) + 0.3).collect();
        let d = ks_statistic(&xs, norm_cdf);
        assert!(d > ks_critical(xs.len(), 0.01));
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(ks_statistic(&[], norm_cdf), 0.0);
    }

    #[test]
    fn critical_value_known_constant() {
        // c(0.05) ≈ 1.3581
        let c = ks_critical(100, 0.05) * 10.0;
        assert!((c - 1.358_1).abs() < 1e-3, "{c}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn bad_alpha_rejected() {
        let _ = ks_critical(10, 1.5);
    }
}
