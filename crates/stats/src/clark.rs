//! Statistical `min`/`max` of canonical forms via tightness probabilities.
//!
//! Implements eqs. (38)–(43) of the paper, which follow Clark's classic
//! moment-matching and the tightness-probability formulation of
//! Visweswariah et al.: the result of `min(Tn, Tm)` is re-expressed as a
//! first-order canonical form whose sensitivities are the
//! tightness-weighted blend of the operands' sensitivities and whose mean
//! absorbs the `−σ·φ(·)` correction term.
//!
//! The approximation deliberately drops the residual (non-linear) variance
//! so the result stays first-order — exactly what the paper does; the
//! Monte Carlo cross-check (Figure 6) quantifies the accuracy.

use crate::canonical::CanonicalForm;
use crate::gaussian::{norm_cdf, norm_pdf};

/// Outcome of a statistical `min`/`max`, exposing the tightness probability
/// alongside the blended form (C-INTERMEDIATE: callers often need both).
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxResult {
    /// The blended first-order form.
    pub form: CanonicalForm,
    /// `P(first operand is the min)` for [`stat_min`]
    /// (resp. the max for [`stat_max`]).
    pub tightness: f64,
    /// Standard deviation of the *residual* the first-order form drops:
    /// `√(Var_exact[min] − Var[form])`, from Clark's exact second
    /// moment. Zero when the blend is exact (deterministic ordering);
    /// otherwise a bound on how much the linear approximation
    /// understates the variance — the quantity behind Figure 6's small
    /// σ error.
    pub residual_std: f64,
}

/// Statistical minimum `min(a, b)` of two jointly normal canonical forms.
///
/// Follows eq. (38): with `t = P(a < b)` (eq. (39)),
///
/// ```text
/// min ≈ t·a0 + (1−t)·b0 − σ_{a,b}·φ((μ_b − μ_a)/σ_{a,b})
///       + Σ (t·aᵢ + (1−t)·bᵢ)·Xᵢ
/// ```
///
/// Degenerate cases (`σ_{a,b} ≈ 0`, i.e. the difference is deterministic)
/// return whichever operand has the smaller mean with tightness snapped to
/// `{0, ½, 1}`.
///
/// ```
/// use varbuf_stats::{CanonicalForm, SourceId, stat_min};
/// let a = CanonicalForm::with_terms(3.0, vec![(SourceId(0), 1.0)]);
/// let b = CanonicalForm::with_terms(5.0, vec![(SourceId(1), 1.0)]);
/// let m = stat_min(&a, &b);
/// assert!(m.form.mean() < 3.0); // min mean is below both means' minimum
/// assert!(m.tightness > 0.5);   // `a` is usually the smaller one
/// ```
#[must_use]
pub fn stat_min(a: &CanonicalForm, b: &CanonicalForm) -> MinMaxResult {
    let (dmu, dvar) = b.sub_stats(a); // moments of b − a, allocation-free
    let sigma = dvar.sqrt();

    if sigma <= f64::EPSILON * (a.mean().abs() + b.mean().abs() + 1.0) {
        // Deterministic ordering of the two forms.
        return if dmu > 0.0 {
            MinMaxResult {
                form: a.clone(),
                tightness: 1.0,
                residual_std: 0.0,
            }
        } else if dmu < 0.0 {
            MinMaxResult {
                form: b.clone(),
                tightness: 0.0,
                residual_std: 0.0,
            }
        } else {
            MinMaxResult {
                form: a.clone(),
                tightness: 0.5,
                residual_std: 0.0,
            }
        };
    }

    let z = dmu / sigma;
    let t = norm_cdf(z); // P(a < b), eq. (39)
    let mut form = a.linear_combination(t, b, 1.0 - t);
    form.add_constant(-sigma * norm_pdf(z));

    // Clark's exact second moment of min(a, b) = −max(−a, −b):
    //   E[min²] = (μa² + σa²)·t + (μb² + σb²)·(1−t) − (μa + μb)·σ·φ(z).
    let (mu_a, mu_b) = (a.mean(), b.mean());
    let (var_a, var_b) = (a.variance(), b.variance());
    let phi = norm_pdf(z);
    let e_min = mu_a * t + mu_b * (1.0 - t) - sigma * phi;
    let e_min2 =
        (mu_a * mu_a + var_a) * t + (mu_b * mu_b + var_b) * (1.0 - t) - (mu_a + mu_b) * sigma * phi;
    let var_exact = (e_min2 - e_min * e_min).max(0.0);
    let residual_std = (var_exact - form.variance()).max(0.0).sqrt();

    MinMaxResult {
        form,
        tightness: t,
        residual_std,
    }
}

/// In-place [`stat_min`]: overwrites `dest` with the blended form of
/// `min(a, b)` and returns the tightness probability `P(a < b)`.
///
/// Bitwise identical to `stat_min(a, b).form` — the same degenerate
/// snaps and the same `t·a + (1−t)·b` merge — but the destination's
/// term buffer is recycled and the residual second-moment bookkeeping
/// (which the DP merge never reads) is skipped. `dest` must be a
/// distinct form from both operands (the borrow checker enforces it).
pub fn stat_min_assign(dest: &mut CanonicalForm, a: &CanonicalForm, b: &CanonicalForm) -> f64 {
    let (dmu, dvar) = b.sub_stats(a);
    let sigma = dvar.sqrt();

    if sigma <= f64::EPSILON * (a.mean().abs() + b.mean().abs() + 1.0) {
        return if dmu > 0.0 {
            dest.copy_from(a);
            1.0
        } else if dmu < 0.0 {
            dest.copy_from(b);
            0.0
        } else {
            dest.copy_from(a);
            0.5
        };
    }

    let z = dmu / sigma;
    let t = norm_cdf(z);
    dest.lin_comb_into(a, t, b, 1.0 - t);
    dest.add_constant(-sigma * norm_pdf(z));
    t
}

/// Statistical maximum `max(a, b)`, derived from
/// `max(a, b) = −min(−a, −b)`.
///
/// The returned tightness is `P(a > b)`, i.e. the probability that the
/// first operand is the max.
#[must_use]
pub fn stat_max(a: &CanonicalForm, b: &CanonicalForm) -> MinMaxResult {
    let r = stat_min(&a.scaled(-1.0), &b.scaled(-1.0));
    MinMaxResult {
        form: r.form.scaled(-1.0),
        tightness: r.tightness,
        residual_std: r.residual_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::SourceId;

    fn form(n: f64, terms: &[(u32, f64)]) -> CanonicalForm {
        CanonicalForm::with_terms(n, terms.iter().map(|&(i, a)| (SourceId(i), a)).collect())
    }

    #[test]
    fn min_of_identical_forms_is_itself() {
        let a = form(2.0, &[(0, 1.0)]);
        let r = stat_min(&a, &a);
        assert_eq!(r.form, a);
        assert_eq!(r.tightness, 0.5);
    }

    #[test]
    fn min_with_clear_winner() {
        let a = form(0.0, &[(0, 0.1)]);
        let b = form(100.0, &[(1, 0.1)]);
        let r = stat_min(&a, &b);
        assert!(r.tightness > 1.0 - 1e-12);
        assert!((r.form.mean() - 0.0).abs() < 1e-6);
        // Sensitivities are (almost) purely a's.
        assert!((r.form.coeff(SourceId(0)) - 0.1).abs() < 1e-9);
        assert!(r.form.coeff(SourceId(1)).abs() < 1e-9);
    }

    #[test]
    fn min_mean_below_both_means() {
        let a = form(3.0, &[(0, 1.0)]);
        let b = form(3.0, &[(1, 1.0)]);
        let r = stat_min(&a, &b);
        // E[min of two iid N(3,1)] = 3 − 1/√π ≈ 2.436 — here σ_diff = √2 so
        // correction = √2·φ(0) = √2/√(2π) = 1/√π.
        let expect = 3.0 - 1.0 / std::f64::consts::PI.sqrt();
        assert!((r.form.mean() - expect).abs() < 1e-9);
        assert!((r.tightness - 0.5).abs() < 1e-12);
        // Blended sensitivities: half of each.
        assert!((r.form.coeff(SourceId(0)) - 0.5).abs() < 1e-12);
        assert!((r.form.coeff(SourceId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_deterministic_difference() {
        // Same source, shifted mean: b − a is constant → pick smaller mean.
        let a = form(1.0, &[(0, 2.0)]);
        let b = form(4.0, &[(0, 2.0)]);
        let r = stat_min(&a, &b);
        assert_eq!(r.form, a);
        assert_eq!(r.tightness, 1.0);
        let r2 = stat_min(&b, &a);
        assert_eq!(r2.form, a);
        assert_eq!(r2.tightness, 0.0);
    }

    #[test]
    fn max_mirrors_min() {
        let a = form(3.0, &[(0, 1.0)]);
        let b = form(3.0, &[(1, 1.0)]);
        let mx = stat_max(&a, &b);
        let mn = stat_min(&a, &b);
        // E[max] + E[min] = μa + μb for jointly normal pairs.
        assert!((mx.form.mean() + mn.form.mean() - 6.0).abs() < 1e-9);
        assert!(mx.form.mean() > 3.0);
    }

    #[test]
    fn residual_variance_matches_monte_carlo() {
        use crate::mc::{sample_moments, MonteCarlo};
        // Two partially correlated forms: the linear blend understates
        // Var[min]; residual_std must close the gap against MC truth.
        let a = form(0.0, &[(0, 3.0), (2, 1.0)]);
        let b = form(0.5, &[(1, 2.5), (2, 1.0)]);
        let r = stat_min(&a, &b);
        let mut mc = MonteCarlo::new(5, vec![SourceId(0), SourceId(1), SourceId(2)]);
        let xs: Vec<f64> = (0..40_000)
            .map(|_| {
                let s = mc.draw();
                s.eval(&a).min(s.eval(&b))
            })
            .collect();
        let (mc_mean, mc_var) = sample_moments(&xs);
        assert!(
            (r.form.mean() - mc_mean).abs() < 0.05,
            "mean {} vs {}",
            r.form.mean(),
            mc_mean
        );
        let var_model = r.form.variance() + r.residual_std * r.residual_std;
        assert!(
            (var_model - mc_var).abs() / mc_var < 0.05,
            "exact var {} vs MC {}",
            var_model,
            mc_var
        );
        // The linear form alone must indeed understate the variance here.
        assert!(r.residual_std > 0.0);
    }

    #[test]
    fn stat_min_assign_matches_stat_min_bitwise() {
        let cases = [
            (form(3.0, &[(0, 1.0)]), form(5.0, &[(1, 1.0)])),
            (form(3.0, &[(0, 1.0)]), form(3.0, &[(1, 1.0)])),
            // Deterministic orderings (shared source, shifted means).
            (form(1.0, &[(0, 2.0)]), form(4.0, &[(0, 2.0)])),
            (form(4.0, &[(0, 2.0)]), form(1.0, &[(0, 2.0)])),
            (form(2.0, &[(0, 1.0)]), form(2.0, &[(0, 1.0)])),
        ];
        for (a, b) in &cases {
            let r = stat_min(a, b);
            let mut dest = form(99.0, &[(42, 7.0)]);
            let t = stat_min_assign(&mut dest, a, b);
            assert_eq!(t.to_bits(), r.tightness.to_bits());
            assert_eq!(dest.mean().to_bits(), r.form.mean().to_bits());
            assert_eq!(dest.term_count(), r.form.term_count());
            for (x, y) in dest.terms().zip(r.form.terms()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn min_against_constant() {
        let a = form(0.0, &[(0, 1.0)]);
        let c = CanonicalForm::constant(-5.0);
        let r = stat_min(&a, &c);
        // Constant −5 is 5σ below a's mean: it is essentially always the min.
        assert!(r.tightness < 1e-4);
        assert!((r.form.mean() + 5.0).abs() < 0.02);
    }
}
