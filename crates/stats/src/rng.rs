//! A small deterministic PRNG so the workspace builds with no external
//! dependencies.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
//! Pseudorandom Number Generators", OOPSLA 2014): a 64-bit counter run
//! through a mixing function. It is statistically solid for simulation
//! workloads (passes BigCrush when used as here), trivially seedable, and
//! — the property every generator in this workspace actually relies on —
//! byte-for-byte reproducible across platforms and compiler versions.
//!
//! This is **not** a cryptographic generator; it backs benchmark
//! generation, Monte Carlo sampling, and property-style tests only.

/// A seedable SplitMix64 generator.
///
/// ```
/// use varbuf_stats::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scales them into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[lo, hi)` (or `[lo, hi]` up to rounding —
    /// the closed/half-open distinction is immaterial for `f64` ranges).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "uniform bounds must be finite with lo <= hi, got [{lo}, {hi}]"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform draw from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        // Multiply-shift rejection-free mapping; the modulo bias for the
        // small n used here (< 2^32) is below 2^-32 and irrelevant for
        // simulation purposes.
        (self.next_u64() % n as u64) as usize
    }

    /// A standard normal draw via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1] avoids ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_output() {
        // Reference value from the SplitMix64 definition with seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..=5.0).contains(&x));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let mean = (0..n).map(|_| r.uniform(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0usize; 7];
        for _ in 0..7_000 {
            counts[r.below(7)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "uniform bounds")]
    fn uniform_rejects_inverted_bounds() {
        let _ = SplitMix64::new(0).uniform(1.0, 0.0);
    }
}
