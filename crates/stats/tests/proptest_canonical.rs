//! Property-style tests on the statistical core data structures: canonical
//! forms, Gaussian orderings, and the statistical min (Clark blend).
//!
//! Cases are drawn from the in-tree deterministic [`SplitMix64`] generator
//! so the suite is hermetic and byte-for-byte reproducible offline.

use varbuf_stats::canonical::{CanonicalForm, SourceId};
use varbuf_stats::gaussian::{norm_cdf, norm_quantile};
use varbuf_stats::rng::SplitMix64;
use varbuf_stats::{stat_max, stat_min};

const CASES: usize = 256;

/// Draws a canonical form with up to 8 terms over 12 sources.
fn canonical_form(rng: &mut SplitMix64) -> CanonicalForm {
    let nominal = rng.uniform(-1e3, 1e3);
    let n_terms = rng.below(8);
    let terms = (0..n_terms)
        .map(|_| (SourceId(rng.below(12) as u32), rng.uniform(-10.0, 10.0)))
        .collect();
    CanonicalForm::with_terms(nominal, terms)
}

#[test]
fn terms_sorted_unique_nonzero() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..CASES {
        let f = canonical_form(&mut rng);
        let terms: Vec<(SourceId, f64)> = f.terms().collect();
        for w in terms.windows(2) {
            assert!(w[0].0 < w[1].0, "terms not strictly sorted");
        }
        assert!(terms.iter().all(|&(_, a)| a != 0.0));
    }
}

#[test]
fn variance_nonnegative_and_cauchy_schwarz() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        assert!(a.variance() >= 0.0);
        // |cov| <= sigma_a * sigma_b (+ rounding slack).
        let cov = a.covariance(&b);
        assert!(cov.abs() <= a.std_dev() * b.std_dev() + 1e-9);
        let rho = a.correlation(&b);
        assert!((-1.0..=1.0).contains(&rho));
    }
}

#[test]
fn addition_is_commutative_and_linear() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let ab = a.add(&b);
        let ba = b.add(&a);
        assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        assert_eq!(ab.term_count(), ba.term_count());
        // Variance of a+b = var(a) + 2cov + var(b).
        let expect = a.variance() + 2.0 * a.covariance(&b) + b.variance();
        assert!((ab.variance() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }
}

#[test]
fn subtracting_self_is_deterministic_zero() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let d = a.sub(&a);
        assert!(d.mean().abs() < 1e-9);
        assert_eq!(d.term_count(), 0);
    }
}

#[test]
fn prob_complementarity() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let p = a.prob_greater(&b);
        let q = b.prob_greater(&a);
        assert!((0.0..=1.0).contains(&p));
        assert!((p + q - 1.0).abs() < 1e-9, "p={p} q={q}");
    }
}

#[test]
fn mean_order_iff_prob_above_half() {
    // Lemma 4 of the paper: under joint normality, P(a > b) > 0.5 iff
    // mean(a) > mean(b) (when the difference has nonzero variance).
    let mut rng = SplitMix64::new(5);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let diff = a.sub(&b);
        if diff.std_dev() <= 1e-9 {
            continue;
        }
        let p = a.prob_greater(&b);
        if a.mean() > b.mean() + 1e-9 {
            assert!(p > 0.5);
        } else if a.mean() < b.mean() - 1e-9 {
            assert!(p < 0.5);
        }
    }
}

#[test]
fn transitivity_of_two_param_ordering() {
    // Lemma 3: P(a>b)>0.5 and P(b>c)>0.5 imply P(a>c)>0.5 under joint
    // normality (mean ordering is transitive). Rather than rejecting random
    // triples until the premise holds, sort the three forms by mean so the
    // premise holds by Lemma 4, then check the conclusion.
    let mut rng = SplitMix64::new(6);
    for _ in 0..CASES {
        let mut v = [
            canonical_form(&mut rng),
            canonical_form(&mut rng),
            canonical_form(&mut rng),
        ];
        v.sort_by(|x, y| y.mean().total_cmp(&x.mean()));
        let [hi, mid, lo] = v;
        if hi.mean() <= mid.mean() + 1e-9 || mid.mean() <= lo.mean() + 1e-9 {
            continue;
        }
        if hi.sub(&mid).std_dev() <= 1e-9
            || mid.sub(&lo).std_dev() <= 1e-9
            || hi.sub(&lo).std_dev() <= 1e-9
        {
            continue;
        }
        // Premises (Lemma 4).
        assert!(hi.prob_greater(&mid) > 0.5);
        assert!(mid.prob_greater(&lo) > 0.5);
        // Conclusion (Lemma 3).
        assert!(hi.prob_greater(&lo) > 0.5);
    }
}

#[test]
fn percentile_monotone_in_alpha() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let p05 = a.percentile(0.05);
        let p50 = a.percentile(0.5);
        let p95 = a.percentile(0.95);
        assert!(p05 <= p50 + 1e-9 && p50 <= p95 + 1e-9);
        assert!((p50 - a.mean()).abs() < 1e-6 * (1.0 + a.mean().abs()));
    }
}

#[test]
fn stat_min_mean_below_operands() {
    let mut rng = SplitMix64::new(8);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let m = stat_min(&a, &b);
        assert!(m.form.mean() <= a.mean().min(b.mean()) + 1e-9);
        assert!((0.0..=1.0).contains(&m.tightness));
    }
}

#[test]
fn stat_max_min_sum_identity() {
    // E[max] + E[min] = E[a] + E[b] for any pair.
    let mut rng = SplitMix64::new(9);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let mx = stat_max(&a, &b);
        let mn = stat_min(&a, &b);
        let got = mx.form.mean() + mn.form.mean();
        let expect = a.mean() + b.mean();
        assert!(
            (got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
            "{got} vs {expect}"
        );
    }
}

#[test]
fn quantile_cdf_roundtrip() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..CASES {
        let p = rng.uniform(1e-6, 0.999_999);
        let x = norm_quantile(p);
        assert!((norm_cdf(x) - p).abs() < 1e-9);
    }
}

#[test]
fn linear_combination_matches_pointwise() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..CASES {
        let a = canonical_form(&mut rng);
        let b = canonical_form(&mut rng);
        let k1 = rng.uniform(-5.0, 5.0);
        let k2 = rng.uniform(-5.0, 5.0);
        // Evaluate both sides on a fixed sample realization.
        use varbuf_stats::mc::SampleVector;
        let mut s = SampleVector::new();
        for i in 0..12 {
            s.set(SourceId(i), f64::from(i) * 0.37 - 1.5);
        }
        let lhs = s.eval(&a.linear_combination(k1, &b, k2));
        let rhs = k1 * s.eval(&a) + k2 * s.eval(&b);
        assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }
}
