//! Property-based tests on the statistical core data structures: canonical
//! forms, Gaussian orderings, and the statistical min (Clark blend).

use proptest::prelude::*;
use varbuf_stats::canonical::{CanonicalForm, SourceId};
use varbuf_stats::gaussian::{norm_cdf, norm_quantile};
use varbuf_stats::{stat_max, stat_min};

/// A strategy producing canonical forms with up to 8 terms over 12 sources.
fn canonical_form() -> impl Strategy<Value = CanonicalForm> {
    (
        -1e3f64..1e3f64,
        proptest::collection::vec((0u32..12, -10.0f64..10.0), 0..8),
    )
        .prop_map(|(nominal, terms)| {
            CanonicalForm::with_terms(
                nominal,
                terms.into_iter().map(|(i, a)| (SourceId(i), a)).collect(),
            )
        })
}

proptest! {
    #[test]
    fn terms_sorted_unique_nonzero(f in canonical_form()) {
        let terms = f.terms();
        for w in terms.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "terms not strictly sorted");
        }
        prop_assert!(terms.iter().all(|&(_, a)| a != 0.0));
    }

    #[test]
    fn variance_nonnegative_and_cauchy_schwarz(a in canonical_form(), b in canonical_form()) {
        prop_assert!(a.variance() >= 0.0);
        let cov = a.covariance(&b);
        // |cov| <= sigma_a * sigma_b (+ rounding slack).
        prop_assert!(cov.abs() <= a.std_dev() * b.std_dev() + 1e-9);
        let rho = a.correlation(&b);
        prop_assert!((-1.0..=1.0).contains(&rho));
    }

    #[test]
    fn addition_is_commutative_and_linear(a in canonical_form(), b in canonical_form()) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert_eq!(ab.terms().len(), ba.terms().len());
        // Variance of a+b = var(a) + 2cov + var(b).
        let expect = a.variance() + 2.0 * a.covariance(&b) + b.variance();
        prop_assert!((ab.variance() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn subtracting_self_is_deterministic_zero(a in canonical_form()) {
        let d = a.sub(&a);
        prop_assert!(d.mean().abs() < 1e-9);
        prop_assert_eq!(d.term_count(), 0);
    }

    #[test]
    fn prob_complementarity(a in canonical_form(), b in canonical_form()) {
        let p = a.prob_greater(&b);
        let q = b.prob_greater(&a);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-9, "p={p} q={q}");
    }

    #[test]
    fn mean_order_iff_prob_above_half(a in canonical_form(), b in canonical_form()) {
        // Lemma 4 of the paper: under joint normality, P(a > b) > 0.5 iff
        // mean(a) > mean(b) (when the difference has nonzero variance).
        let diff = a.sub(&b);
        prop_assume!(diff.std_dev() > 1e-9);
        let p = a.prob_greater(&b);
        if a.mean() > b.mean() + 1e-9 {
            prop_assert!(p > 0.5);
        } else if a.mean() < b.mean() - 1e-9 {
            prop_assert!(p < 0.5);
        }
    }

    #[test]
    fn transitivity_of_two_param_ordering(
        a in canonical_form(),
        b in canonical_form(),
        c in canonical_form(),
    ) {
        // Lemma 3: P(a>b)>0.5 and P(b>c)>0.5 imply P(a>c)>0.5 under
        // joint normality (mean ordering is transitive). Rather than
        // rejecting random triples until the premise holds, sort the three
        // forms by mean so the premise holds by Lemma 4, then check the
        // conclusion.
        let mut v = [a, b, c];
        v.sort_by(|x, y| y.mean().total_cmp(&x.mean()));
        let [hi, mid, lo] = v;
        prop_assume!(hi.mean() > mid.mean() + 1e-9 && mid.mean() > lo.mean() + 1e-9);
        prop_assume!(hi.sub(&mid).std_dev() > 1e-9);
        prop_assume!(mid.sub(&lo).std_dev() > 1e-9);
        prop_assume!(hi.sub(&lo).std_dev() > 1e-9);
        // Premises (Lemma 4).
        prop_assert!(hi.prob_greater(&mid) > 0.5);
        prop_assert!(mid.prob_greater(&lo) > 0.5);
        // Conclusion (Lemma 3).
        prop_assert!(hi.prob_greater(&lo) > 0.5);
    }

    #[test]
    fn percentile_monotone_in_alpha(a in canonical_form()) {
        let p05 = a.percentile(0.05);
        let p50 = a.percentile(0.5);
        let p95 = a.percentile(0.95);
        prop_assert!(p05 <= p50 + 1e-9 && p50 <= p95 + 1e-9);
        prop_assert!((p50 - a.mean()).abs() < 1e-6 * (1.0 + a.mean().abs()));
    }

    #[test]
    fn stat_min_mean_below_operands(a in canonical_form(), b in canonical_form()) {
        let m = stat_min(&a, &b);
        prop_assert!(m.form.mean() <= a.mean().min(b.mean()) + 1e-9);
        prop_assert!((0.0..=1.0).contains(&m.tightness));
    }

    #[test]
    fn stat_max_min_sum_identity(a in canonical_form(), b in canonical_form()) {
        // E[max] + E[min] = E[a] + E[b] for any pair.
        let mx = stat_max(&a, &b);
        let mn = stat_min(&a, &b);
        let got = mx.form.mean() + mn.form.mean();
        let expect = a.mean() + b.mean();
        prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect.abs()), "{got} vs {expect}");
    }

    #[test]
    fn quantile_cdf_roundtrip(p in 1e-6f64..0.999_999f64) {
        let x = norm_quantile(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn linear_combination_matches_pointwise(
        a in canonical_form(),
        b in canonical_form(),
        k1 in -5.0f64..5.0,
        k2 in -5.0f64..5.0,
    ) {
        // Evaluate both sides on a fixed sample realization.
        use varbuf_stats::mc::SampleVector;
        let mut s = SampleVector::new();
        for i in 0..12 {
            s.set(SourceId(i), f64::from(i) * 0.37 - 1.5);
        }
        let lhs = s.eval(&a.linear_combination(k1, &b, k2));
        let rhs = k1 * s.eval(&a) + k2 * s.eval(&b);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }
}
