//! Pinning suite for the lane-blocked batch kernels and the run-chunked
//! sparse kernels.
//!
//! Two families of pins, matching the two determinism contracts in the
//! `interner` module docs:
//!
//! * the **lane-blocked** [`FormBatch`] kernels must reproduce their
//!   scalar reference schedules ([`lane_variance_ref`] / [`lane_dot_ref`]
//!   / [`lane_lin_comb_dot_ref`]) bit for bit, across seeds and widths
//!   straddling the 8-lane boundary;
//! * the **run-chunked galloping** kernels of [`CanonicalForm`]
//!   (`lin_comb_into`, `add_scaled_assign`, `sub_stats`) must reproduce
//!   an independent naive sorted-merge reference bit for bit, including
//!   the degenerate run shapes that stress the gallop: empty exclusive
//!   runs, single-term forms, fully interleaved source ownership, and
//!   exact zero cancellations.
//!
//! Cases come from the in-tree [`SplitMix64`] generator, so the suite is
//! hermetic and reproducible offline.

use varbuf_stats::canonical::{CanonicalForm, SourceId};
use varbuf_stats::rng::SplitMix64;
use varbuf_stats::{
    lane_dot_ref, lane_lin_comb_dot_ref, lane_variance_ref, ColumnForm, FormBatch,
    ScatterPlanCache, TermInterner, LANES,
};

const SEEDS: [u64; 3] = [0x9E37_79B9, 0x85EB_CA6B, 0xC2B2_AE35];

fn random_form(rng: &mut SplitMix64, width: u32, max_terms: usize) -> CanonicalForm {
    let n = rng.below(max_terms + 1);
    let terms = (0..n)
        .map(|_| {
            (
                SourceId(rng.below(width as usize) as u32),
                rng.uniform(-4.0, 4.0),
            )
        })
        .collect();
    CanonicalForm::with_terms(rng.uniform(-10.0, 10.0), terms)
}

/// Naive sorted-merge reference for `k1·a + k2·b`: the textbook two-
/// pointer walk with per-branch expressions spelled out — exactly the
/// grouping the run-chunked kernel documents (`k·c` on exclusive runs,
/// `k1·ca + k2·cb` on shared ids, exact zeros dropped).
fn naive_lin_comb(a: &CanonicalForm, k1: f64, b: &CanonicalForm, k2: f64) -> CanonicalForm {
    let ta: Vec<(SourceId, f64)> = a.terms().collect();
    let tb: Vec<(SourceId, f64)> = b.terms().collect();
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < ta.len() || j < tb.len() {
        let c = if j >= tb.len() || (i < ta.len() && ta[i].0 < tb[j].0) {
            let v = (ta[i].0, k1 * ta[i].1);
            i += 1;
            v
        } else if i >= ta.len() || tb[j].0 < ta[i].0 {
            let v = (tb[j].0, k2 * tb[j].1);
            j += 1;
            v
        } else {
            let v = (ta[i].0, k1 * ta[i].1 + k2 * tb[j].1);
            i += 1;
            j += 1;
            v
        };
        if c.1 != 0.0 {
            out.push(c);
        }
    }
    CanonicalForm::with_terms(k1 * a.mean() + k2 * b.mean(), out)
}

fn assert_forms_bitwise(label: &str, got: &CanonicalForm, want: &CanonicalForm) {
    assert_eq!(
        got.mean().to_bits(),
        want.mean().to_bits(),
        "{label}: mean bits"
    );
    assert_eq!(got.term_count(), want.term_count(), "{label}: term count");
    for ((gi, gc), (wi, wc)) in got.terms().zip(want.terms()) {
        assert_eq!(gi, wi, "{label}: term id");
        assert_eq!(gc.to_bits(), wc.to_bits(), "{label}: term coefficient");
    }
}

#[test]
fn lane_batch_kernels_match_scalar_references_across_seeds() {
    // Widths straddling the lane boundary on every side: a pure tail,
    // one exact block, block + tail, several blocks.
    for &seed in &SEEDS {
        for &width in &[3u32, 8, 13, 24, 51] {
            let mut rng = SplitMix64::new(seed ^ u64::from(width));
            let universe: Vec<SourceId> = (0..width).map(SourceId).collect();
            let interner = TermInterner::new(universe.iter().copied());
            let forms: Vec<CanonicalForm> = (0..24)
                .map(|_| random_form(&mut rng, width, width as usize))
                .collect();
            let probe = random_form(&mut rng, width, width as usize);
            let dense_probe = ColumnForm::from_canonical(&interner, &probe);

            let mut batch = FormBatch::new(&interner);
            for f in &forms {
                batch.push(&interner, f);
            }

            let mut vars = Vec::new();
            batch.variances_into(&mut vars);
            let mut covs = Vec::new();
            batch.covariances_with_into(&dense_probe, &mut covs);
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            batch.envelopes_into(3.0, &mut lo, &mut hi);
            for i in 0..forms.len() {
                let label = format!("seed{seed:x}/w{width}/row{i}");
                let var_ref = lane_variance_ref(batch.row(i));
                assert_eq!(vars[i].to_bits(), var_ref.to_bits(), "{label}: variance");
                assert_eq!(
                    covs[i].to_bits(),
                    lane_dot_ref(batch.row(i), dense_probe.columns()).to_bits(),
                    "{label}: covariance"
                );
                let spread = 3.0 * var_ref.sqrt();
                assert_eq!(
                    lo[i].to_bits(),
                    (batch.means()[i] - spread).to_bits(),
                    "{label}: lo"
                );
                assert_eq!(
                    hi[i].to_bits(),
                    (batch.means()[i] + spread).to_bits(),
                    "{label}: hi"
                );
            }

            // Fused lin-comb + covariance against every probe row.
            let stride = width.div_ceil(LANES as u32) as usize * LANES;
            let n = batch.len();
            for t in 0..4 {
                let (i, j, p) = (t % n, (t * 7 + 1) % n, (t * 3 + 2) % n);
                let (k1, k2) = (0.5 + t as f64, -1.5 + t as f64 * 0.25);
                let mut row_a = batch.row(i).to_vec();
                row_a.resize(stride, 0.0);
                let mut row_b = batch.row(j).to_vec();
                row_b.resize(stride, 0.0);
                let mut row_p = batch.row(p).to_vec();
                row_p.resize(stride, 0.0);
                let mut out_ref = vec![0.0; stride];
                let want = lane_lin_comb_dot_ref(&row_a, k1, &row_b, k2, &row_p, &mut out_ref);
                let got = batch.lin_comb_cov_push(i, k1, j, k2, p);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "seed{seed:x}/w{width}: fused cov"
                );
                let new = batch.len() - 1;
                for (x, y) in batch.row(new).iter().zip(&out_ref) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed{seed:x}/w{width}: fused row");
                }
            }
        }
    }
}

#[test]
fn interned_scatter_is_bitwise_equal_to_plain_push() {
    for &seed in &SEEDS {
        let mut rng = SplitMix64::new(seed);
        let universe: Vec<SourceId> = (0..40).map(SourceId).collect();
        let interner = TermInterner::new(universe.iter().copied());
        let mut cache = ScatterPlanCache::new();
        let mut plain = FormBatch::new(&interner);
        let mut interned = FormBatch::new(&interner);
        for _ in 0..64 {
            let f = random_form(&mut rng, 40, 12);
            plain.push(&interner, &f);
            interned.push_interned(&interner, &mut cache, &f);
        }
        assert!(
            cache.distinct_sets() + cache.hits() == 64,
            "every push either interned or reused a set"
        );
        for i in 0..plain.len() {
            assert_eq!(plain.means()[i].to_bits(), interned.means()[i].to_bits());
            for (x, y) in plain.row(i).iter().zip(interned.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed{seed:x}: row {i}");
            }
        }
    }
}

#[test]
fn zero_variance_columns_are_exact_through_lane_kernels() {
    // Constants (no live columns) and forms whose only term sits past
    // the last full lane block: variance must come out as an exact
    // (sign-normalized) zero or the lone square, never accumulate noise.
    let interner = TermInterner::new((0..9).map(SourceId));
    let mut batch = FormBatch::new(&interner);
    batch.push(&interner, &CanonicalForm::constant(5.0));
    batch.push(
        &interner,
        &CanonicalForm::with_terms(1.0, vec![(SourceId(8), 0.25)]),
    );
    let mut vars = Vec::new();
    batch.variances_into(&mut vars);
    assert_eq!(vars[0].to_bits(), 0.0f64.to_bits(), "constant row: +0.0");
    assert_eq!(vars[1].to_bits(), (0.25f64 * 0.25).to_bits());
    // Covariance of anything against the constant row is an exact +0.0.
    let probe = ColumnForm::from_canonical(&interner, &CanonicalForm::constant(2.0));
    let mut covs = Vec::new();
    batch.covariances_with_into(&probe, &mut covs);
    assert_eq!(covs[0].to_bits(), 0.0f64.to_bits());
    assert_eq!(covs[1].to_bits(), 0.0f64.to_bits());
}

#[test]
fn run_chunked_lin_comb_matches_naive_reference() {
    // Random shapes across seeds, plus the structured worst cases.
    for &seed in &SEEDS {
        let mut rng = SplitMix64::new(seed);
        for case in 0..128 {
            let a = random_form(&mut rng, 24, 12);
            let b = random_form(&mut rng, 24, 12);
            let k1 = rng.uniform(-3.0, 3.0);
            let k2 = rng.uniform(-3.0, 3.0);
            let want = naive_lin_comb(&a, k1, &b, k2);
            let mut got = CanonicalForm::constant(0.0);
            got.lin_comb_into(&a, k1, &b, k2);
            assert_forms_bitwise(&format!("seed{seed:x}/case{case}"), &got, &want);
        }
    }
}

#[test]
fn run_chunked_kernels_handle_degenerate_run_shapes() {
    let shared = |ids: &[u32], coeff: f64| -> CanonicalForm {
        CanonicalForm::with_terms(1.0, ids.iter().map(|&i| (SourceId(i), coeff)).collect())
    };
    // (label, a, b) covering: empty exclusive runs (identical id sets),
    // single-term forms, fully interleaved ownership (every run has
    // length one), one-sided emptiness, and subset containment.
    let cases = [
        (
            "identical-sets",
            shared(&[1, 2, 3, 4], 0.5),
            shared(&[1, 2, 3, 4], -0.25),
        ),
        ("single-term", shared(&[7], 2.0), shared(&[7], 3.0)),
        ("single-disjoint", shared(&[3], 2.0), shared(&[9], 3.0)),
        (
            "interleaved",
            shared(&[0, 2, 4, 6, 8], 1.0),
            shared(&[1, 3, 5, 7, 9], -1.0),
        ),
        (
            "empty-left",
            CanonicalForm::constant(4.0),
            shared(&[2, 5], 1.5),
        ),
        (
            "empty-right",
            shared(&[2, 5], 1.5),
            CanonicalForm::constant(-4.0),
        ),
        (
            "both-empty",
            CanonicalForm::constant(1.0),
            CanonicalForm::constant(2.0),
        ),
        (
            "subset",
            shared(&[1, 2, 3, 4, 5, 6], 1.0),
            shared(&[2, 4], 0.5),
        ),
    ];
    for (label, a, b) in &cases {
        for &(k1, k2) in &[(1.0, 1.0), (1.0, -1.0), (0.5, -2.0), (0.0, 1.0), (1.0, 0.0)] {
            let want = naive_lin_comb(a, k1, b, k2);
            let mut got = CanonicalForm::constant(0.0);
            got.lin_comb_into(a, k1, b, k2);
            assert_forms_bitwise(&format!("{label}/k({k1},{k2})"), &got, &want);

            // add_scaled_assign documents bit-equality with
            // `linear_combination(1.0, ·, k)` — including the exact-
            // cancellation fallback these shapes trigger.
            let want_asa = naive_lin_comb(a, 1.0, b, k2);
            let mut got_asa = a.clone();
            got_asa.add_scaled_assign(b, k2);
            assert_forms_bitwise(&format!("{label}/asa k{k2}"), &got_asa, &want_asa);

            // sub_stats mirrors the materialized difference's moments.
            let diff = naive_lin_comb(a, 1.0, b, -1.0);
            let (dmu, dvar) = a.sub_stats(b);
            assert_eq!(
                dmu.to_bits(),
                (a.mean() - b.mean()).to_bits(),
                "{label}: dmu"
            );
            assert_eq!(dvar.to_bits(), diff.variance().to_bits(), "{label}: dvar");
        }
    }
}

#[test]
fn exact_cancellation_falls_back_identically() {
    // Crafted so `a + k·b` zeroes an interior coefficient exactly:
    // the in-place kernel must take its fallback and still match the
    // naive reference bit for bit (the canonical invariant forbids
    // stored zeros).
    let a = CanonicalForm::with_terms(
        2.0,
        vec![(SourceId(1), 1.5), (SourceId(3), -0.75), (SourceId(5), 2.0)],
    );
    let b = CanonicalForm::with_terms(-1.0, vec![(SourceId(3), 1.5), (SourceId(4), 1.0)]);
    let k = 0.5; // 0.5·1.5 cancels −0.75 exactly
    let want = naive_lin_comb(&a, 1.0, &b, k);
    assert_eq!(want.coeff(SourceId(3)), 0.0, "the crafted cancel happened");
    let mut got = a.clone();
    got.add_scaled_assign(&b, k);
    assert_forms_bitwise("cancel", &got, &want);

    // A zero scale multiplying a fresh (insert-position) source also
    // hits the cancel guard: `k·cb == 0.0` must not insert a zero term.
    let mut gz = a.clone();
    gz.add_scaled_assign(&b, 0.0);
    assert_forms_bitwise("zero-scale", &gz, &naive_lin_comb(&a, 1.0, &b, 0.0));
}
