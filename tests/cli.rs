//! End-to-end tests of the `varbuf` command-line interface, driving the
//! real binary through generate → info → optimize → skew.

use std::process::Command;

fn varbuf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_varbuf"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = varbuf().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Like [`run`] but returning the raw exit code — the degradation
/// contract distinguishes 0 (clean) from 2 (degraded success).
fn run_code(args: &[&str]) -> (i32, String, String) {
    let out = varbuf().args(args).output().expect("binary runs");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("varbuf gen"));
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn gen_info_opt_skew_roundtrip() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");

    // gen
    let (ok, stdout, stderr) = run(&["gen", "random:40:9", "--subdivide", "500", "-o", tree]);
    assert!(ok, "gen failed: {stderr}");
    assert!(stdout.contains("40 sinks"), "{stdout}");

    // info
    let (ok, stdout, _) = run(&["info", tree]);
    assert!(ok);
    assert!(stdout.contains("sinks:       40"));
    assert!(stdout.contains("wire length:"));

    // opt (with a small MC cross-check)
    let (ok, stdout, stderr) = run(&["opt", tree, "--mode", "wid", "--mc", "500"]);
    assert!(ok, "opt failed: {stderr}");
    assert!(stdout.contains("mode WID:"), "{stdout}");
    assert!(stdout.contains("silicon (WID):"));
    assert!(stdout.contains("monte carlo"));

    // opt with sizing
    let (ok, stdout, stderr) = run(&["opt", tree, "--sizing"]);
    assert!(ok, "opt --sizing failed: {stderr}");
    assert!(stdout.contains("widened edges"), "{stdout}");

    // skew
    let (ok, stdout, stderr) = run(&["skew", tree]);
    assert!(ok, "skew failed: {stderr}");
    assert!(stdout.contains("global skew"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_named_benchmark_to_stdout() {
    let (ok, stdout, _) = run(&["gen", "r1"]);
    assert!(ok);
    assert!(stdout.starts_with("varbuf-tree v1"));
    // 267 sinks → 267 sink lines.
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with("sink ")).count(),
        267
    );
}

#[test]
fn info_rejects_missing_file() {
    let (ok, _, stderr) = run(&["info", "/nonexistent/never.tree"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));
}

#[test]
fn degraded_opt_exits_two_with_report() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-deg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:120:6", "-o", tree]);
    assert!(ok);

    // 4P under a solution budget it cannot meet: the governor falls back
    // to 2P, the run succeeds, and the exit code flags the degradation.
    let (code, stdout, stderr) =
        run_code(&["opt", tree, "--rule", "4p", "--budget-solutions", "200"]);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("degraded run"), "{stdout}");
    assert!(stdout.contains("fell back from 4P"), "{stdout}");
    assert!(stdout.contains("mode WID:"), "a design is still printed");
    assert!(stdout.contains("silicon (WID):"));

    // The same budget with headroom to spare: clean exit 0, no report.
    let (code, stdout, _) = run_code(&["opt", tree, "--degrade", "--budget-solutions", "100000"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(!stdout.contains("degraded run"), "{stdout}");
    assert!(stdout.contains("mode WID:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_flags_are_validated() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-bv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:10:1", "-o", tree]);
    assert!(ok);

    let (code, _, stderr) = run_code(&["opt", tree, "--budget-solutions", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--budget-solutions"), "{stderr}");

    // A bare budget flag is a typo, not a request for defaults.
    let (code, _, stderr) = run_code(&["opt", tree, "--budget-solutions"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("needs a value"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--budget-time", "-3"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--budget-time"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--rule", "5p"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown rule"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--mode", "nom", "--degrade"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("statistical mode"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_documents_exit_code_contract() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("--degrade"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains("success with degradation"), "{stdout}");
}

#[test]
fn opt_rejects_bad_p_threshold_gracefully() {
    // `--p 0.4` violates the 2P precondition; the CLI must report a
    // clean typed error (exit 1), not a panic backtrace.
    let dir = std::env::temp_dir().join(format!("varbuf-cli-p-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:10:1", "-o", tree]);
    assert!(ok);
    let (code, _, stderr) = run_code(&["opt", tree, "--p", "0.4"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("invalid 2P configuration"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
