//! End-to-end tests of the `varbuf` command-line interface, driving the
//! real binary through generate → info → optimize → skew, plus the
//! resident `serve` mode over a stdin/stdout pipe.

use std::io::Write;
use std::process::{Command, Stdio};

fn varbuf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_varbuf"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = varbuf().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Like [`run`] but returning the raw exit code — the degradation
/// contract distinguishes 0 (clean) from 2 (degraded success).
fn run_code(args: &[&str]) -> (i32, String, String) {
    let out = varbuf().args(args).output().expect("binary runs");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pipes `script` into `varbuf serve` with the given extra flags and
/// returns `(exit_code, stdout, stderr)`.
fn serve(flags: &[&str], script: &str) -> (i32, String, String) {
    let mut child = varbuf()
        .arg("serve")
        .args(flags)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // A broken pipe is fine: flag-validation failures exit before
    // reading stdin at all.
    let _ = child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes());
    let out = child.wait_with_output().expect("serve exits");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("varbuf gen"));
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn gen_info_opt_skew_roundtrip() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");

    // gen
    let (ok, stdout, stderr) = run(&["gen", "random:40:9", "--subdivide", "500", "-o", tree]);
    assert!(ok, "gen failed: {stderr}");
    assert!(stdout.contains("40 sinks"), "{stdout}");

    // info
    let (ok, stdout, _) = run(&["info", tree]);
    assert!(ok);
    assert!(stdout.contains("sinks:       40"));
    assert!(stdout.contains("wire length:"));

    // opt (with a small MC cross-check)
    let (ok, stdout, stderr) = run(&["opt", tree, "--mode", "wid", "--mc", "500"]);
    assert!(ok, "opt failed: {stderr}");
    assert!(stdout.contains("mode WID:"), "{stdout}");
    assert!(stdout.contains("silicon (WID):"));
    assert!(stdout.contains("monte carlo"));

    // opt with sizing
    let (ok, stdout, stderr) = run(&["opt", tree, "--sizing"]);
    assert!(ok, "opt --sizing failed: {stderr}");
    assert!(stdout.contains("widened edges"), "{stdout}");

    // skew
    let (ok, stdout, stderr) = run(&["skew", tree]);
    assert!(ok, "skew failed: {stderr}");
    assert!(stdout.contains("global skew"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_named_benchmark_to_stdout() {
    let (ok, stdout, _) = run(&["gen", "r1"]);
    assert!(ok);
    assert!(stdout.starts_with("varbuf-tree v1"));
    // 267 sinks → 267 sink lines.
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with("sink ")).count(),
        267
    );
}

#[test]
fn info_rejects_missing_file() {
    let (ok, _, stderr) = run(&["info", "/nonexistent/never.tree"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));
}

#[test]
fn degraded_opt_exits_two_with_report() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-deg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:120:6", "-o", tree]);
    assert!(ok);

    // 4P under a solution budget it cannot meet: the governor falls back
    // to 2P, the run succeeds, and the exit code flags the degradation.
    let (code, stdout, stderr) =
        run_code(&["opt", tree, "--rule", "4p", "--budget-solutions", "200"]);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("degraded run"), "{stdout}");
    assert!(stdout.contains("fell back from 4P"), "{stdout}");
    assert!(stdout.contains("mode WID:"), "a design is still printed");
    assert!(stdout.contains("silicon (WID):"));

    // The same budget with headroom to spare: clean exit 0, no report.
    let (code, stdout, _) = run_code(&["opt", tree, "--degrade", "--budget-solutions", "100000"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(!stdout.contains("degraded run"), "{stdout}");
    assert!(stdout.contains("mode WID:"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_flags_are_validated() {
    let dir = std::env::temp_dir().join(format!("varbuf-cli-bv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:10:1", "-o", tree]);
    assert!(ok);

    let (code, _, stderr) = run_code(&["opt", tree, "--budget-solutions", "0"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--budget-solutions"), "{stderr}");

    // A bare budget flag is a typo, not a request for defaults.
    let (code, _, stderr) = run_code(&["opt", tree, "--budget-solutions"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("needs a value"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--budget-time", "-3"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--budget-time"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--rule", "5p"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown rule"), "{stderr}");

    let (code, _, stderr) = run_code(&["opt", tree, "--mode", "nom", "--degrade"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("statistical mode"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_documents_exit_code_contract() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("--degrade"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains("success with degradation"), "{stdout}");
}

#[test]
fn malformed_specs_and_flags_exit_one_without_panicking() {
    // Inputs that used to trip generator asserts or be silently
    // swallowed must be typed exit-1 errors.
    for args in [
        &["gen", "random:0"][..],
        &["gen", "random:5:notanumber"],
        &["gen", "htree:0"],
        &["gen", "htree:30"],
        &["gen", "random:5:1", "--subdivide", "0"],
        &["gen", "random:5:1", "--subdivide", "abc"],
    ] {
        let (code, _, stderr) = run_code(args);
        assert_eq!(code, 1, "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }

    let dir = std::env::temp_dir().join(format!("varbuf-cli-mal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:10:1", "-o", tree]);
    assert!(ok);
    for (args, needle) in [
        (&["opt", tree, "--mode", "bogus"][..], "unknown --mode"),
        (&["opt", tree, "--spatial", "bogus"], "unknown --spatial"),
        (&["opt", tree, "--mc", "abc"], "bad --mc"),
        (&["opt", tree, "--p", "abc"], "bad --p"),
        (&["skew", tree, "--spatial", "bogus"], "unknown --spatial"),
    ] {
        let (code, _, stderr) = run_code(args);
        assert_eq!(code, 1, "{args:?}: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_answers_a_scripted_session_and_contains_a_panic() {
    let (code, stdout, stderr) = serve(
        &["--faults"],
        "ping\n\
         open random:8:7\n\
         opt s0.0\n\
         inject panic 2\n\
         opt s0.0\n\
         opt s0.0\n\
         close s0.0\n\
         opt s0.0\n\
         stats\n\
         quit\n",
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "ok pong");
    assert!(lines[1].starts_with("ok open session=s0.0"), "{stdout}");
    assert!(lines[2].starts_with("ok opt id=1"), "{stdout}");
    assert_eq!(lines[3], "ok inject id=2");
    // The injected panic is contained: a structured error, then the
    // session only accepts close, then the handle goes stale.
    assert!(
        lines[4].starts_with("err internal contained panic"),
        "{stdout}"
    );
    assert!(lines[5].starts_with("err poisoned"), "{stdout}");
    assert!(lines[6].starts_with("ok close"), "{stdout}");
    assert!(lines[7].starts_with("err stale"), "{stdout}");
    assert!(lines[8].contains("panics=1"), "{stdout}");
    assert_eq!(*lines.last().unwrap(), "ok bye");
}

#[test]
fn serve_batches_preserve_order_and_malformed_lines_do_not_kill_it() {
    let (code, stdout, _) = serve(
        &[],
        "open random:6:3\n\
         begin\n\
         opt s0.0\n\
         opt s0.0\n\
         close s0.0\n\
         commit\n\
         open random:0\n\
         inject panic 1\n\
         frobnicate\n\
         quit\n",
    );
    assert_eq!(code, 0);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[1].starts_with("ok begin"));
    assert!(lines[2].starts_with("ok opt id=1"), "{stdout}");
    assert!(lines[3].starts_with("ok opt id=2"), "{stdout}");
    assert!(lines[4].starts_with("ok close"), "{stdout}");
    assert_eq!(lines[5], "ok commit");
    // Bad spec, faults not enabled, unknown verb: typed errors, service
    // keeps going.
    assert!(lines[6].starts_with("err malformed"), "{stdout}");
    assert!(lines[7].starts_with("err faults-disabled"), "{stdout}");
    assert!(lines[8].starts_with("err malformed"), "{stdout}");
    assert_eq!(*lines.last().unwrap(), "ok bye");
}

#[test]
fn serve_watchdog_cancels_and_sheds_under_overload() {
    // Watchdog: a delay-faulted request comes back cancelled with its
    // best-so-far design rather than hanging the service.
    let (code, stdout, _) = serve(
        &["--faults", "--watchdog", "0.05"],
        "open random:8:7\n\
         inject delay 1 9\n\
         opt s0.0\n\
         quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("cancelled=1"), "{stdout}");

    // Overload: the third queued request exceeds the hard queue budget
    // and is shed with a typed retry-after; order is preserved.
    let (code, stdout, _) = serve(
        &["--queue-soft", "17", "--queue-hard", "34"],
        "open random:8:7\n\
         begin\n\
         opt s0.0\n\
         opt s0.0\n\
         opt s0.0\n\
         commit\n\
         stats\n\
         quit\n",
    );
    assert_eq!(code, 0);
    assert!(stdout.contains("err overloaded"), "{stdout}");
    assert!(stdout.contains("retry_after_ms="), "{stdout}");
    assert!(stdout.contains("shed=1"), "{stdout}");
}

#[test]
fn serve_loads_an_inline_tree() {
    // Round-trip a generated net through the protocol's `load` block.
    let (ok, tree_text, _) = run(&["gen", "random:5:4"]);
    assert!(ok);
    let script = format!("load\n{tree_text}end\nopt s0.0\nclose s0.0\nquit\n");
    let (code, stdout, _) = serve(&[], &script);
    assert_eq!(code, 0);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("ok open session=s0.0"), "{stdout}");
    assert!(lines[1].starts_with("ok opt id=1"), "{stdout}");
    assert!(lines[2].starts_with("ok close"), "{stdout}");

    // A truncated load block is a typed error, not a hang or a panic.
    let (code, stdout, _) = serve(&[], "load\nvarbuf-tree v1\n");
    assert_eq!(code, 0);
    assert!(stdout.contains("err malformed"), "{stdout}");
}

#[test]
fn serve_validates_startup_flags() {
    let (code, _, stderr) = serve(&["--watchdog", "-1"], "quit\n");
    assert_eq!(code, 1);
    assert!(stderr.contains("--watchdog"), "{stderr}");

    let (code, _, stderr) = serve(&["--queue-soft", "100", "--queue-hard", "50"], "quit\n");
    assert_eq!(code, 1);
    assert!(stderr.contains("--queue-soft"), "{stderr}");
}

#[test]
fn opt_rejects_bad_p_threshold_gracefully() {
    // `--p 0.4` violates the 2P precondition; the CLI must report a
    // clean typed error (exit 1), not a panic backtrace.
    let dir = std::env::temp_dir().join(format!("varbuf-cli-p-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let tree_path = dir.join("net.tree");
    let tree = tree_path.to_str().expect("utf8 path");
    let (ok, ..) = run(&["gen", "random:10:1", "-o", tree]);
    assert!(ok);
    let (code, _, stderr) = run_code(&["opt", tree, "--p", "0.4"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("invalid 2P configuration"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
