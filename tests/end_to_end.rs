//! Cross-crate integration tests: the full pipeline from benchmark
//! generation through optimization to yield analysis and Monte Carlo
//! validation, exercised through the public facade.

use varbuf::core::det::assignment_with_nominal_values;
use varbuf::core::dp::{optimize_with_rule, DpOptions, RootSelection};
use varbuf::prelude::*;
use varbuf::rctree::elmore::ElmoreEvaluator;
use varbuf::stats::mc::sample_moments;

fn small_setup(sinks: usize, seed: u64, kind: SpatialKind) -> (RoutingTree, ProcessModel) {
    let tree = generate_benchmark(&BenchmarkSpec::random("it", sinks, seed)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), kind);
    (tree, model)
}

#[test]
fn full_pipeline_all_modes() {
    let (tree, model) = small_setup(48, 11, SpatialKind::Heterogeneous);
    let [nom, d2d, wid] =
        optimize_all_modes(&tree, &model, &Options::default()).expect("optimizations succeed");

    // Under the true silicon model, WID's 95%-yield RAT is the best of
    // the three (it optimizes exactly that criterion with full knowledge).
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let scores: Vec<f64> = [&nom, &d2d, &wid]
        .iter()
        .map(|r| silicon.analyze(&r.assignment).rat_at_95_yield)
        .collect();
    assert!(
        scores[2] >= scores[0] - 1e-6 && scores[2] >= scores[1] - 1e-6,
        "WID {} must beat NOM {} and D2D {}",
        scores[2],
        scores[0],
        scores[1]
    );
}

#[test]
fn statistical_mean_is_consistent_with_deterministic_elmore() {
    // The WID-optimized design, stripped of variation, must evaluate via
    // plain Elmore to (almost) the mean the canonical propagation claims —
    // the only gap is the statistical-min correction, which is small and
    // always pushes the analytic mean DOWN (min is concave).
    let (tree, model) = small_setup(40, 3, SpatialKind::Homogeneous);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("optimize");

    // Nominal Elmore of the same assignment, but with the systematic
    // within-die shift applied through the model's nominal evaluator.
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let analytic = silicon.analyze(&wid.assignment);

    let mc = silicon.monte_carlo(&wid.assignment, 3000, 99);
    let (mc_mean, _) = sample_moments(&mc);
    let rel = (analytic.rat.mean() - mc_mean).abs() / mc_mean.abs();
    assert!(
        rel < 0.01,
        "analytic {} vs MC {}",
        analytic.rat.mean(),
        mc_mean
    );

    // And the pure-nominal (no shift) evaluation matches plain Elmore.
    let nom_eval = YieldEvaluator::new(&tree, &model, VariationMode::Nominal);
    let nominal_rat = nom_eval.rat_form(&wid.assignment);
    let elmore = ElmoreEvaluator::new(&tree).evaluate(
        &assignment_with_nominal_values(&wid.assignment, model.library())
            .expect("ids from this library"),
    );
    assert!(
        (nominal_rat.mean() - elmore.root_rat).abs() <= 1e-6 * elmore.root_rat.abs(),
        "canonical nominal {} vs Elmore {} (min-correction must vanish without variance)",
        nominal_rat.mean(),
        elmore.root_rat
    );
}

#[test]
fn pruning_rules_agree_on_tiny_nets() {
    // On a net small enough for the 4P cross-product, all rules land
    // within a few percent of each other.
    let tree = generate_benchmark(&BenchmarkSpec::random("tiny", 5, 2));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let opts = DpOptions::default();
    let mut means = Vec::new();
    let rules: Vec<Box<dyn PruningRule>> = vec![
        Box::new(TwoParam::default()),
        Box::new(OneParam::default()),
        Box::new(FourParam::default()),
    ];
    for rule in &rules {
        let r = optimize_with_rule(
            &tree,
            &model,
            VariationMode::WithinDie,
            rule.as_ref(),
            &opts,
        )
        .expect("completes");
        means.push(r.root_rat.mean());
    }
    let spread = (means.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - means.iter().copied().fold(f64::INFINITY, f64::min))
        / means[0].abs();
    assert!(spread < 0.05, "rules disagree: {means:?}");
}

#[test]
fn root_selection_criteria_trade_mean_for_sigma() {
    let (tree, model) = small_setup(64, 21, SpatialKind::Heterogeneous);
    let mean_sel = optimize_with_rule(
        &tree,
        &model,
        VariationMode::WithinDie,
        &TwoParam::default(),
        &DpOptions {
            root_selection: RootSelection::MeanRat,
            ..DpOptions::default()
        },
    )
    .expect("mean");
    let yield_sel = optimize_with_rule(
        &tree,
        &model,
        VariationMode::WithinDie,
        &TwoParam::default(),
        &DpOptions::default(),
    )
    .expect("yield");
    // By construction of the criteria:
    assert!(mean_sel.root_rat.mean() >= yield_sel.root_rat.mean() - 1e-9);
    let y = |r: &varbuf::core::dp::StatResult| {
        r.root_rat.mean() - 1.644_853_626_951_472_4 * r.root_rat.std_dev()
    };
    assert!(y(&yield_sel) >= y(&mean_sel) - 1e-9);
}

#[test]
fn io_roundtrip_preserves_optimization_results() {
    // Serialize the tree, read it back, and confirm the optimizer makes
    // identical decisions — guards against lossy IO.
    let (tree, model) = small_setup(32, 8, SpatialKind::Homogeneous);
    let mut buf = Vec::new();
    varbuf::rctree::io::write_tree(&tree, &mut buf).expect("write");
    let back = varbuf::rctree::io::read_tree(buf.as_slice()).expect("read");

    let a = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("a");
    let model_b = ProcessModel::paper_defaults(back.bounding_box(), SpatialKind::Homogeneous);
    let b = optimize_statistical(
        &back,
        &model_b,
        VariationMode::WithinDie,
        &Options::default(),
    )
    .expect("b");
    assert_eq!(a.assignment.len(), b.assignment.len());
    assert!((a.root_rat.mean() - b.root_rat.mean()).abs() < 1e-9);
}

#[test]
fn htree_capacity_smoke() {
    // A 1024-sink H-tree completes quickly with flat per-node lists —
    // the miniature of the paper's 64k-sink capacity footnote (the full
    // size runs in the `capacity` experiment binary).
    let tree = generate_htree(&HTreeSpec::with_levels(10));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let r = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("completes");
    assert!(r.buffer_count() > 0);
    assert!(r.stats.max_solutions_per_node < 10_000);
}

#[test]
fn governed_facade_survives_budget_the_strict_engine_cannot() {
    use std::sync::Arc;
    // Through the public facade: a solution budget that makes strict 4P
    // abort is absorbed by the governed engine via rule fallback, and
    // the degraded design still scores sanely under the silicon model.
    let (tree, model) = small_setup(64, 17, SpatialKind::Heterogeneous);
    let tight = DpOptions {
        max_solutions_per_node: 150,
        ..DpOptions::default()
    };
    let strict = optimize_with_rule(
        &tree,
        &model,
        VariationMode::WithinDie,
        &FourParam::default(),
        &tight,
    );
    assert!(strict.is_err(), "strict 4P must abort under this cap");

    let budget = Budget {
        soft_solutions: 150,
        hard_solutions: 600,
        ..Budget::unlimited()
    };
    let governed = optimize_governed(
        &tree,
        &model,
        VariationMode::WithinDie,
        Arc::new(FourParam::default()),
        &tight,
        &budget,
    )
    .expect("governed run completes");
    assert!(governed.degradation.degraded());
    assert!(governed.degradation.rule_fallbacks() >= 1);

    // The degraded design is a real design: the silicon evaluator agrees
    // with the DP's claimed RAT and lands near a pure-2P design.
    let silicon = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let rat = silicon.rat_form(&governed.result.assignment);
    assert!((rat.mean() - governed.result.root_rat.mean()).abs() < 1e-6 * rat.mean().abs());
    let pure = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("2P");
    let rel =
        (governed.result.root_rat.mean() - pure.root_rat.mean()).abs() / pure.root_rat.mean().abs();
    assert!(
        rel < 0.02,
        "degraded 4P {} vs 2P {}",
        governed.result.root_rat.mean(),
        pure.root_rat.mean()
    );
}

#[test]
fn deterministic_results_are_reproducible() {
    let (tree, model) = small_setup(40, 5, SpatialKind::Heterogeneous);
    let a = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("a");
    let b = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("b");
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.root_rat, b.root_rat);
}
