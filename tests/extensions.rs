//! Integration tests of the extension features: clock-skew analysis and
//! simultaneous wire sizing, cross-validated against Monte Carlo and the
//! deterministic Elmore evaluator.

use varbuf::prelude::*;
use varbuf::rctree::elmore::{BufferValues, ElmoreEvaluator};
use varbuf::stats::mc::{sample_moments, MonteCarlo};

#[test]
fn pair_skew_form_matches_monte_carlo() {
    // Build a buffered clock-ish tree and compare the analytic skew form
    // between two sinks against brute-force Monte Carlo of the full
    // deterministic evaluator.
    let tree = generate_htree(&HTreeSpec::with_levels(5));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("optimize");

    let analyzer = SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie);
    let analysis = analyzer.analyze(&wid.assignment);
    let sink_a = analysis.arrivals[0].0;
    let sink_b = analysis.arrivals[analysis.arrivals.len() / 2].0;
    let skew_form = analysis.pair_skew(sink_a, sink_b);

    // Monte Carlo: sample the buffers' sources, evaluate both arrivals.
    let mut used = std::collections::BTreeSet::new();
    let prepared: Vec<_> = wid
        .assignment
        .iter()
        .map(|&(node, ty)| {
            let loc = tree.node(node).location;
            let cap = model.buffer_cap_form(ty, node, loc, VariationMode::WithinDie);
            let delay = model.buffer_delay_form(ty, node, loc, VariationMode::WithinDie);
            used.extend(cap.term_ids().iter().copied());
            used.extend(delay.term_ids().iter().copied());
            (node, cap, delay, model.buffer_resistance(ty))
        })
        .collect();
    let mut mc = MonteCarlo::new(11, used.into_iter().collect());
    let eval = ElmoreEvaluator::new(&tree);
    let samples: Vec<f64> = (0..2000)
        .map(|_| {
            let s = mc.draw();
            let mut placed = varbuf::rctree::elmore::BufferAssignment::new();
            for (node, cap, delay, res) in &prepared {
                placed.insert(
                    *node,
                    BufferValues {
                        capacitance: s.eval(cap),
                        intrinsic_delay: s.eval(delay),
                        resistance: *res,
                    },
                );
            }
            let rep = eval.evaluate(&placed);
            let d = |id| {
                rep.sink_delays
                    .iter()
                    .find(|&&(sid, _)| sid == id)
                    .expect("sink")
                    .1
            };
            d(sink_a) - d(sink_b)
        })
        .collect();
    let (mc_mean, mc_var) = sample_moments(&samples);

    assert!(
        (skew_form.mean() - mc_mean).abs() < 0.5 + 0.02 * mc_mean.abs(),
        "skew mean: form {} vs MC {}",
        skew_form.mean(),
        mc_mean
    );
    let mc_sigma = mc_var.sqrt();
    assert!(
        (skew_form.std_dev() - mc_sigma).abs() < 0.15 * mc_sigma.max(0.5),
        "skew sigma: form {} vs MC {}",
        skew_form.std_dev(),
        mc_sigma
    );
}

#[test]
fn sized_design_matches_sized_elmore_at_nominal() {
    // The wire-sizing DP's claimed mean RAT must agree with the
    // deterministic Elmore evaluator once the widths and buffers are
    // applied — with the zero-variance model so the min-corrections
    // vanish.
    let tree = generate_benchmark(&BenchmarkSpec::random("ext-size", 24, 3)).subdivided(1000.0);
    let lib = BufferLibrary::default_65nm();
    let model = ProcessModel::new(
        tree.bounding_box(),
        SpatialKind::Homogeneous,
        VariationBudgets::zero(),
        lib.clone(),
    );
    let sizing = WireSizing::default_three();
    let sized = optimize_with_sizing(
        &tree,
        &model,
        VariationMode::WithinDie,
        &TwoParam::default(),
        &sizing,
        &DpOptions::default(),
    )
    .expect("sized");

    let mut placed = varbuf::rctree::elmore::BufferAssignment::new();
    for &(node, ty) in &sized.assignment {
        let t = lib.get(ty);
        placed.insert(
            node,
            BufferValues {
                capacitance: t.capacitance,
                intrinsic_delay: t.intrinsic_delay,
                resistance: t.resistance,
            },
        );
    }
    let widths = sizing.edge_widths(&sized.wire_widths);
    let rep = ElmoreEvaluator::new(&tree).evaluate_sized(&placed, &widths);
    assert!(
        (rep.root_rat - sized.root_rat.mean()).abs() < 1e-6 * rep.root_rat.abs(),
        "Elmore {} vs DP {}",
        rep.root_rat,
        sized.root_rat.mean()
    );
}

#[test]
fn governed_wire_sizing_degrades_but_keeps_consistent_widths() {
    use std::sync::Arc;
    // Wire sizing triples the decision space, so a modest solution
    // budget forces degradation — and the degraded result's widths must
    // still index into the sizing table and re-evaluate consistently.
    let tree = generate_benchmark(&BenchmarkSpec::random("ext-gov", 40, 7)).subdivided(500.0);
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Heterogeneous);
    let sizing = WireSizing::default_three();
    let budget = Budget {
        soft_solutions: 12,
        hard_solutions: 48,
        ..Budget::unlimited()
    };
    let governed = optimize_governed_detailed(
        &tree,
        &model,
        VariationMode::WithinDie,
        fallback_cascade(Arc::new(TwoParam::new(0.9, 0.9))),
        &sizing,
        &DpOptions::default(),
        &budget,
        RunControls::default(),
    )
    .expect("governed sizing completes");
    assert!(governed.degradation.degraded());
    let r = &governed.result;
    assert!(r
        .wire_widths
        .iter()
        .all(|&(_, wi)| (wi as usize) < sizing.widths().len()));
    let ye = YieldEvaluator::new(&tree, &model, VariationMode::WithinDie);
    let rat = ye.rat_form_sized(&r.assignment, &sizing.edge_widths(&r.wire_widths));
    // Degradation may tighten epsilon-sparsification, so the DP's forms
    // can drift slightly from the exact re-evaluation — allow 0.1%.
    assert!(
        (rat.mean() - r.root_rat.mean()).abs() < 1e-3 * r.root_rat.mean().abs(),
        "evaluator {} vs degraded DP {}",
        rat.mean(),
        r.root_rat.mean()
    );
}

#[test]
fn skew_shared_variation_cancels() {
    // Two sinks sharing most of their path: pair skew sigma must be far
    // below either arrival's sigma (the correlation-aware payoff).
    let tree = generate_htree(&HTreeSpec::with_levels(6));
    let model = ProcessModel::paper_defaults(tree.bounding_box(), SpatialKind::Homogeneous);
    let wid = optimize_statistical(&tree, &model, VariationMode::WithinDie, &Options::default())
        .expect("optimize");
    let analysis =
        SkewAnalyzer::new(&tree, &model, VariationMode::WithinDie).analyze(&wid.assignment);

    // Neighboring sinks in the arrival list share deep path prefixes.
    let (a, fa) = &analysis.arrivals[0];
    let (b, fb) = &analysis.arrivals[1];
    let pair = analysis.pair_skew(*a, *b);
    let arrival_sigma = fa.std_dev().max(fb.std_dev());
    assert!(
        pair.std_dev() < 0.8 * arrival_sigma,
        "pair skew sigma {} should be well below arrival sigma {arrival_sigma}",
        pair.std_dev()
    );
}
